//! The payoff tests for `--profile`: the cycle breakdowns must *explain*
//! the paper's headline results, not just decorate them.
//!
//! - Table 5: Linux's 0.38x TCP bandwidth is delayed-ack/window stall,
//!   not protocol CPU.
//! - Figure 1: Linux's context-switch curve grows because its O(n)
//!   run-queue scan grows with the number of processes.
//! - Figure 12: FreeBSD's create/delete cost is synchronous metadata
//!   writes pinning the benchmark to the disk.
//! - And across personalities, the attribution accounts for (nearly) all
//!   elapsed cycles — the instrumentation has no blind spots.

use tnt_harness::{profile_experiment, ProfiledSample, Scale};
use tnt_sim::trace::{Class, Counter};

fn find<'a>(samples: &'a [ProfiledSample], label: &str) -> &'a ProfiledSample {
    samples
        .iter()
        .find(|s| s.label == label)
        .unwrap_or_else(|| {
            let labels: Vec<&str> = samples.iter().map(|s| s.label.as_str()).collect();
            panic!("no sample labelled {label:?} in {labels:?}")
        })
}

fn share(s: &ProfiledSample, class: Class) -> f64 {
    s.report.class_total(class) as f64 / s.report.elapsed.max(1) as f64
}

#[test]
fn t5_linux_loses_to_delayed_ack_wait() {
    let samples = profile_experiment("t5", &Scale::quick()).unwrap();
    let linux = find(&samples, "Linux");
    let (top_class, _) = linux.report.by_class()[0];
    assert_eq!(
        top_class,
        Class::AckWindowWait,
        "Linux TCP's largest cost class must be the delayed-ack/window \
         stall:\n{}",
        linux.report.render("Linux")
    );
    assert!(
        linux.report.counter(Counter::DelayedAcks) > 0,
        "every Linux segment waits out a delayed ack"
    );
    // FreeBSD streams against a real window: no ack stall at all, and
    // protocol CPU on top.
    let freebsd = find(&samples, "FreeBSD");
    assert_eq!(freebsd.report.class_total(Class::AckWindowWait), 0);
    assert_eq!(freebsd.report.by_class()[0].0, Class::ProtoCpu);
    assert_eq!(freebsd.report.counter(Counter::DelayedAcks), 0);
}

#[test]
fn f1_linux_sched_scan_grows_with_nprocs() {
    let scale = Scale::quick();
    let samples = profile_experiment("f1", &scale).unwrap();
    let lo = *scale.ctx_procs.first().unwrap();
    let hi = *scale.ctx_procs.last().unwrap();
    let small = find(&samples, &format!("Linux n={lo}"));
    let big = find(&samples, &format!("Linux n={hi}"));
    // The O(n) scan shows up as per-switch scheduler cost growing with
    // the number of runnable processes...
    let per_switch = |s: &ProfiledSample| {
        s.report.class_total(Class::SchedScan) as f64
            / s.report.counter(Counter::Dispatches).max(1) as f64
    };
    assert!(
        per_switch(big) > 3.0 * per_switch(small),
        "Linux's run-queue scan must cost much more per switch at n={hi} \
         ({:.0}cy) than at n={lo} ({:.0}cy)",
        per_switch(big),
        per_switch(small)
    );
    // ...and as a growing share of total time, which is Figure 1's slope.
    assert!(
        share(big, Class::SchedScan) > share(small, Class::SchedScan),
        "scan share must grow with nprocs"
    );
}

#[test]
fn f12_freebsd_pays_synchronous_metadata_writes() {
    let scale = Scale::quick();
    let samples = profile_experiment("f12", &scale).unwrap();
    let freebsd = find(&samples, "FreeBSD");
    let linux = find(&samples, "Linux");
    let iters = scale.crtdel_iters as u64;
    let fb_sync = freebsd.report.counter(Counter::SyncMetaWrites);
    assert!(
        fb_sync >= 4 * iters,
        "FFS pays at least four synchronous metadata writes per \
         create/delete: {fb_sync} over {iters} iterations"
    );
    assert!(
        fb_sync > linux.report.counter(Counter::SyncMetaWrites),
        "Linux's asynchronous metadata policy writes less synchronously"
    );
    let disk = |s: &ProfiledSample| {
        share(s, Class::DiskSeek) + share(s, Class::DiskRotation) + share(s, Class::DiskMedia)
    };
    assert!(
        disk(freebsd) > disk(linux),
        "the sync writes pin FreeBSD to the platter: {:.1}% vs {:.1}%",
        100.0 * disk(freebsd),
        100.0 * disk(linux)
    );
}

#[test]
fn attribution_covers_at_least_ninety_percent_everywhere() {
    let scale = Scale::quick();
    for id in ["t5", "f12", "t2"] {
        for s in profile_experiment(id, &scale).unwrap() {
            assert!(
                s.report.coverage() >= 0.90,
                "{id}/{}: only {:.1}% of elapsed cycles attributed:\n{}",
                s.label,
                100.0 * s.report.coverage(),
                s.report.render(&s.label)
            );
        }
    }
}
