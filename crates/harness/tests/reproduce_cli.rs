//! End-to-end tests of the `reproduce` binary: id listing, flag
//! validation, and the bless → check regression-gate roundtrip.

use std::path::PathBuf;
use std::process::{Command, Output};

fn reproduce(args: &[&str], dir: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn reproduce")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tnt-reproduce-cli-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn list_prints_paper_experiments_and_ablations() {
    let dir = temp_dir("list");
    let out = reproduce(&["--list"], &dir);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let ids: Vec<&str> = stdout.lines().collect();
    for id in ["t1", "t7", "f1", "f13", "x1", "x7"] {
        assert!(ids.contains(&id), "--list missing {id}:\n{stdout}");
    }
    // Ablations come after the paper experiments.
    let t1 = ids.iter().position(|i| *i == "t1").unwrap();
    let x1 = ids.iter().position(|i| *i == "x1").unwrap();
    assert!(t1 < x1, "ablations must follow paper experiments");
    // Explore scenarios close the listing, in their own namespace.
    for id in ["explore/mutex-contention", "explore/timer-race"] {
        assert!(ids.contains(&id), "--list missing {id}:\n{stdout}");
    }
    // The replay experiments and the vendored trace fixtures are listed
    // too: x11/x12 among the ablations, fixtures in their namespace.
    for id in [
        "x11",
        "x12",
        "replay/desktop_boot",
        "replay/compile_burst",
        "replay/blkparse_sample",
    ] {
        assert!(ids.contains(&id), "--list missing {id}:\n{stdout}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_fixture_runs_deterministically_and_writes_the_artifact() {
    let dir = temp_dir("replay");
    let res = dir.join("res");
    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/traces/desktop_boot.tntrace");
    let args = ["replay", fixture.to_str().unwrap(), "--out", res.to_str().unwrap()];
    let first = reproduce(&args, &dir);
    assert!(
        first.status.success(),
        "replay failed:\n{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let stdout = String::from_utf8(first.stdout.clone()).unwrap();
    assert!(stdout.contains("desktop_boot"), "{stdout}");
    for os in ["Linux", "FreeBSD", "Solaris"] {
        assert!(stdout.contains(os), "{os} row missing:\n{stdout}");
    }
    let artifact = std::fs::read_to_string(res.join("REPLAY.json")).unwrap();
    assert!(artifact.contains("\"busy_cy\""), "{artifact}");
    assert!(artifact.contains("desktop_boot"), "{artifact}");
    // Byte-determinism: the blessed record is the whole point.
    let second = reproduce(&args, &dir);
    assert_eq!(first.stdout, second.stdout, "replay output must be byte-stable");

    // An unknown trace is a usage error naming the fixtures.
    let bad = reproduce(&["replay", "no_such_trace"], &dir);
    assert_eq!(bad.status.code(), Some(2));
    let stderr = String::from_utf8(bad.stderr).unwrap();
    assert!(stderr.contains("no_such_trace"), "{stderr}");
    assert!(stderr.contains("desktop_boot"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_record_captures_and_replays_an_experiment() {
    let dir = temp_dir("replay-record");
    let res = dir.join("res");
    let out = reproduce(
        &["replay", "--record", "x5", "--out", res.to_str().unwrap()],
        &dir,
    );
    assert!(
        out.status.success(),
        "replay --record failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("captured"), "{stdout}");
    // One .tntrace per machine x5 booted, next to future fixtures.
    let captures: Vec<_> = std::fs::read_dir(res.join("traces"))
        .expect("traces dir")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert!(
        captures.iter().any(|n| n.starts_with("x5_") && n.ends_with(".tntrace")),
        "no captures written: {captures:?}"
    );
    assert!(res.join("REPLAY.json").is_file());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explore_all_passes_and_writes_the_artifact() {
    let dir = temp_dir("explore");
    let res = dir.join("res");
    let out = reproduce(&["explore", "--all", "--out", res.to_str().unwrap()], &dir);
    assert!(
        out.status.success(),
        "explore failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("mutex-contention"), "{stdout}");
    assert!(stdout.contains("PASS"), "{stdout}");
    let artifact = std::fs::read_to_string(res.join("EXPLORE.json")).unwrap();
    assert!(artifact.contains("\"passed\": true"), "{artifact}");
    assert!(artifact.contains("schedules"), "{artifact}");

    // An unknown scenario is a usage error, not a silent skip.
    let bad = reproduce(&["explore", "no-such-scenario"], &dir);
    assert_eq!(bad.status.code(), Some(2));
    let stderr = String::from_utf8(bad.stderr).unwrap();
    assert!(stderr.contains("no-such-scenario"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_flags_exit_with_usage_not_a_silent_run() {
    let dir = temp_dir("flags");
    let out = reproduce(&["--parallel", "t2"], &dir);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--parallel"), "names the flag:\n{stderr}");
    assert!(stderr.contains("usage:"), "shows usage:\n{stderr}");
    // Nothing ran, nothing was written.
    assert!(out.stdout.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bless_then_check_roundtrip_passes_and_perturbation_fails() {
    let dir = temp_dir("gate");
    let res = dir.join("res");
    let out_arg = res.to_str().unwrap();

    let bless = reproduce(&["bless", "--out", out_arg, "t1", "t2", "t4"], &dir);
    assert!(
        bless.status.success(),
        "bless failed:\n{}",
        String::from_utf8_lossy(&bless.stderr)
    );
    let baselines = res.join("baselines.json");
    assert!(baselines.exists(), "bless must write baselines.json");

    // Same deterministic sim, same scale: the gate passes.
    let check = reproduce(&["check", "--out", out_arg, "t1", "t2", "t4"], &dir);
    assert!(
        check.status.success(),
        "fresh check failed:\n{}",
        String::from_utf8_lossy(&check.stderr)
    );
    let stdout = String::from_utf8(check.stdout).unwrap();
    assert!(stdout.contains("regression gate PASSED"), "{stdout}");

    // Perturb one blessed mean by 20% — far past the 2% tolerance.
    let text = std::fs::read_to_string(&baselines).unwrap();
    let mut store = tnt_runner::BaselineStore::from_json(&text).unwrap();
    let stat = store
        .records
        .iter_mut()
        .find(|r| r.id == "t2")
        .expect("t2 blessed")
        .stats
        .first_mut()
        .expect("t2 has stats");
    stat.mean *= 1.2;
    std::fs::write(&baselines, store.to_json()).unwrap();

    let drifted = reproduce(&["check", "--out", out_arg, "t1", "t2", "t4"], &dir);
    assert!(!drifted.status.success(), "perturbed check must fail");
    let stderr = String::from_utf8(drifted.stderr).unwrap();
    assert!(
        stderr.contains("regression gate FAILED"),
        "loud failure:\n{stderr}"
    );
    assert!(stderr.contains("t2"), "failure names the experiment:\n{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_without_baselines_explains_itself() {
    let dir = temp_dir("nobase");
    let res = dir.join("res");
    let out = reproduce(&["check", "--out", res.to_str().unwrap(), "t1"], &dir);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("reproduce bless"),
        "points at bless:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
