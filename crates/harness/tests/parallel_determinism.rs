//! The parallel runner's core guarantee: `--jobs N` produces
//! byte-identical output to the serial path — rendered text, CSV
//! series and `baselines.json` alike — and a panicking shard fails
//! only its own experiment.

use tnt_harness::{all_ids, execute, extra_ids, plan, Cell, ExperimentPlan, PlanBody, Scale};
use tnt_runner::BaselineStore;

fn suite_ids() -> Vec<&'static str> {
    all_ids().into_iter().chain(extra_ids()).collect()
}

struct Flat {
    text: String,
    csv: Vec<(String, String)>,
    baselines: String,
}

fn run_suite(jobs: usize) -> Flat {
    let scale = Scale::smoke();
    let results = execute(plan(&suite_ids(), &scale), jobs);
    let mut text = String::new();
    let mut csv = Vec::new();
    let mut records = Vec::new();
    for result in results {
        assert!(
            result.error.is_none(),
            "experiment {} failed: {:?}",
            result.id,
            result.error
        );
        for output in result.outputs {
            text.push_str(&output.text);
            csv.extend(output.csv);
            if let Some(rec) = output.record {
                records.push(rec);
            }
        }
    }
    let baselines = BaselineStore {
        scale: scale.label.to_string(),
        records,
    }
    .to_json();
    Flat {
        text,
        csv,
        baselines,
    }
}

#[test]
fn jobs8_is_byte_identical_to_jobs1_across_all_experiments() {
    let serial = run_suite(1);
    let parallel = run_suite(8);
    assert_eq!(serial.text, parallel.text, "rendered text diverged");
    assert_eq!(
        serial.csv.len(),
        parallel.csv.len(),
        "CSV file set diverged"
    );
    for ((n1, c1), (n8, c8)) in serial.csv.iter().zip(&parallel.csv) {
        assert_eq!(n1, n8, "CSV order diverged");
        assert_eq!(c1, c8, "CSV {n1} diverged");
    }
    assert_eq!(
        serial.baselines, parallel.baselines,
        "baselines.json diverged"
    );
}

#[test]
fn intermediate_job_counts_agree_too() {
    // 2 and 5 exercise different steal patterns than 8.
    let reference = run_suite(1).text;
    for jobs in [2, 5] {
        assert_eq!(run_suite(jobs).text, reference, "jobs={jobs} diverged");
    }
}

fn exploding_plan() -> ExperimentPlan {
    ExperimentPlan {
        id: "boom",
        title: "SYNTHETIC. Exploding experiment",
        body: PlanBody::Cells {
            cells: vec![
                Cell {
                    label: "boom/ok".into(),
                    cost: 1,
                    work: Box::new(|| vec![1.0]),
                },
                Cell {
                    label: "boom/Linux/run2".into(),
                    cost: 1,
                    work: Box::new(|| panic!("disk caught fire")),
                },
            ],
            render: Box::new(|_| unreachable!("render must not run after a shard panic")),
        },
    }
}

#[test]
fn a_panicking_shard_fails_only_its_experiment() {
    let scale = Scale::smoke();
    // Real experiments on both sides of the synthetic failure.
    let mut plans = plan(&["t2", "t4"], &scale);
    plans.insert(1, exploding_plan());
    let results = execute(plans, 8);
    assert_eq!(results.len(), 3);

    assert!(results[0].error.is_none(), "t2 must survive");
    assert!(results[2].error.is_none(), "t4 must survive");
    assert!(results[0].outputs[0].text.contains("TABLE 2"));
    assert!(results[2].outputs[0].text.contains("TABLE 4"));

    let err = results[1].error.as_ref().expect("boom must fail");
    assert!(
        err.contains("boom/Linux/run2"),
        "report names the shard: {err}"
    );
    assert!(
        err.contains("disk caught fire"),
        "report carries the panic message: {err}"
    );
    let report = &results[1].outputs[0];
    assert!(report.text.contains("FAILED"), "{}", report.text);
    assert!(
        report.text.contains("other experiments in this run are unaffected"),
        "{}",
        report.text
    );
    assert!(report.record.is_none(), "no record for a failed experiment");
}

#[test]
fn records_cover_the_whole_suite() {
    let flat = run_suite(4);
    let store = BaselineStore::from_json(&flat.baselines).unwrap();
    assert_eq!(store.scale, "smoke");
    // One record per output id: 20 paper experiments + 12 ablations.
    assert_eq!(store.records.len(), 32);
    for required in [
        "t1", "t2", "f1", "f9", "f10", "f11", "t7", "x1", "x7", "x8", "x9", "x10", "x11", "x12",
    ] {
        assert!(
            store.records.iter().any(|r| r.id == required),
            "{required} missing from records"
        );
    }
    // Measured tables carry per-OS statistics.
    let t2 = store.records.iter().find(|r| r.id == "t2").unwrap();
    assert_eq!(t2.stats.len(), 3);
    assert!(t2.stats.iter().all(|s| s.mean > 0.0));
}
