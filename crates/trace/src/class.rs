//! Attribution classes and always-on counters.

/// Where a span of cycles belongs in the cost breakdown.
///
/// Classes split into **CPU classes** (time the processor was busy inside
/// the span) and **wait classes** (time the whole system sat idle while
/// some process was parked inside the span). [`Class::idle_priority`]
/// distinguishes them: idle clock jumps are attributed to the open wait
/// span with the best (lowest) priority across all blocked processes, so
/// e.g. a disk platter rotating beats a server merely waiting for its next
/// request.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Class {
    /// User-mode computation (charges outside any span).
    User,
    /// Trap/syscall entry-exit overhead.
    TrapEntry,
    /// Scheduler run-queue scan + dispatch cost.
    SchedScan,
    /// Kernel data copies (copyin/copyout, pipe buffers).
    DataCopy,
    /// Cache-miss stalls in the modelled memory system.
    CacheStall,
    /// Buffer-cache bookkeeping CPU in the filesystem.
    FsCpu,
    /// Disk arm seek (plus command overhead).
    DiskSeek,
    /// Disk rotational latency.
    DiskRotation,
    /// Disk media transfer.
    DiskMedia,
    /// Network/IPC protocol CPU (segment and datagram processing).
    ProtoCpu,
    /// Sender stalled on the TCP send window — for Linux 1.2.8 this is
    /// dominated by the receiver's delayed ACK.
    AckWindowWait,
    /// Data in flight on the (simulated) wire.
    WireTransit,
    /// Blocked in a socket or pipe receive with nothing arrived yet.
    NetRecvWait,
    /// NFS client blocked awaiting an RPC reply.
    RpcWait,
    /// NFS server CPU handling a request.
    RpcServer,
    /// Blocked on a full/empty pipe.
    PipeWait,
    /// Idle cycles no open wait span claims (attribution gap).
    UnknownIdle,
}

impl Class {
    /// Every class, in display order.
    pub const ALL: [Class; 17] = [
        Class::User,
        Class::TrapEntry,
        Class::SchedScan,
        Class::DataCopy,
        Class::CacheStall,
        Class::FsCpu,
        Class::DiskSeek,
        Class::DiskRotation,
        Class::DiskMedia,
        Class::ProtoCpu,
        Class::AckWindowWait,
        Class::WireTransit,
        Class::NetRecvWait,
        Class::RpcWait,
        Class::RpcServer,
        Class::PipeWait,
        Class::UnknownIdle,
    ];

    /// Short stable label (used in folded stacks and tables).
    pub fn label(self) -> &'static str {
        match self {
            Class::User => "user",
            Class::TrapEntry => "trap entry",
            Class::SchedScan => "sched scan",
            Class::DataCopy => "data copy",
            Class::CacheStall => "cache stall",
            Class::FsCpu => "fs cpu",
            Class::DiskSeek => "disk seek",
            Class::DiskRotation => "disk rotation",
            Class::DiskMedia => "disk media",
            Class::ProtoCpu => "protocol cpu",
            Class::AckWindowWait => "ack/window wait",
            Class::WireTransit => "wire transit",
            Class::NetRecvWait => "net recv wait",
            Class::RpcWait => "rpc wait",
            Class::RpcServer => "rpc server",
            Class::PipeWait => "pipe wait",
            Class::UnknownIdle => "(unattributed idle)",
        }
    }

    /// For wait classes, the priority used when attributing an idle clock
    /// jump (lower wins). CPU classes return `None`.
    pub fn idle_priority(self) -> Option<u8> {
        match self {
            Class::DiskSeek => Some(0),
            Class::DiskRotation => Some(1),
            Class::DiskMedia => Some(2),
            Class::AckWindowWait => Some(3),
            Class::WireTransit => Some(4),
            Class::RpcWait => Some(5),
            Class::PipeWait => Some(6),
            Class::NetRecvWait => Some(7),
            _ => None,
        }
    }
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.label())
    }
}

/// Always-on atomic tallies. Unlike spans these are never dropped by the
/// ring and cost one relaxed atomic add each.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Counter {
    /// System calls entered.
    Syscalls,
    /// `fork()` calls.
    Forks,
    /// `exec()` calls.
    Execs,
    /// Engine dispatches (context switches).
    Dispatches,
    /// Buffer-cache hits.
    CacheHits,
    /// Buffer-cache misses.
    CacheMisses,
    /// Disk read commands issued.
    DiskReads,
    /// Disk write commands issued.
    DiskWrites,
    /// Synchronous metadata writes (the FFS create/unlink tax).
    SyncMetaWrites,
    /// Transient disk command failures injected by the fault plane.
    DiskFaults,
    /// Sector-remap latency spikes injected by the fault plane.
    DiskRemaps,
    /// TCP segments carried.
    TcpSegments,
    /// TCP segments retransmitted after a (injected) wire loss.
    TcpRetransmits,
    /// Delayed ACKs scheduled (Linux 1.2.8's one-packet window stall).
    DelayedAcks,
    /// UDP datagrams carried.
    UdpDatagrams,
    /// Frames the fault plane duplicated in flight.
    NetDupFrames,
    /// Frames the fault plane delivered late.
    NetLateFrames,
    /// NFS RPCs issued by clients.
    RpcCalls,
    /// NFS RPC retransmissions.
    RpcRetransmits,
    /// NFS RPC major timeouts (retry limit exhausted; ETIMEDOUT).
    RpcMajorTimeouts,
    /// L1 cache misses in the memory-system model.
    L1Misses,
    /// L2 cache misses in the memory-system model.
    L2Misses,
    /// Cycles the memory-system model spent beyond the L1-hit cost.
    MemStallCycles,
    /// Events dropped by a full trace ring (overflow accounting).
    TraceDrops,
    /// Lite-process polls dispatched by cooperative schedulers (the
    /// crowd-scale analogue of `Dispatches`).
    LiteDispatches,
}

impl Counter {
    /// Number of counters (array sizing).
    pub const COUNT: usize = 25;

    /// Every counter, in display order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Syscalls,
        Counter::Forks,
        Counter::Execs,
        Counter::Dispatches,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::DiskReads,
        Counter::DiskWrites,
        Counter::SyncMetaWrites,
        Counter::DiskFaults,
        Counter::DiskRemaps,
        Counter::TcpSegments,
        Counter::TcpRetransmits,
        Counter::DelayedAcks,
        Counter::UdpDatagrams,
        Counter::NetDupFrames,
        Counter::NetLateFrames,
        Counter::RpcCalls,
        Counter::RpcRetransmits,
        Counter::RpcMajorTimeouts,
        Counter::L1Misses,
        Counter::L2Misses,
        Counter::MemStallCycles,
        Counter::TraceDrops,
        Counter::LiteDispatches,
    ];

    /// Short stable label for table footers.
    pub fn label(self) -> &'static str {
        match self {
            Counter::Syscalls => "syscalls",
            Counter::Forks => "forks",
            Counter::Execs => "execs",
            Counter::Dispatches => "dispatches",
            Counter::CacheHits => "bufcache hits",
            Counter::CacheMisses => "bufcache misses",
            Counter::DiskReads => "disk reads",
            Counter::DiskWrites => "disk writes",
            Counter::SyncMetaWrites => "sync meta writes",
            Counter::DiskFaults => "disk faults",
            Counter::DiskRemaps => "disk remaps",
            Counter::TcpSegments => "tcp segments",
            Counter::TcpRetransmits => "tcp retransmits",
            Counter::DelayedAcks => "delayed acks",
            Counter::UdpDatagrams => "udp datagrams",
            Counter::NetDupFrames => "net dup frames",
            Counter::NetLateFrames => "net late frames",
            Counter::RpcCalls => "rpc calls",
            Counter::RpcRetransmits => "rpc retransmits",
            Counter::RpcMajorTimeouts => "rpc major timeouts",
            Counter::L1Misses => "l1 misses",
            Counter::L2Misses => "l2 misses",
            Counter::MemStallCycles => "mem stall cycles",
            Counter::TraceDrops => "trace drops",
            Counter::LiteDispatches => "lite dispatches",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_are_complete_and_unique() {
        let mut classes: Vec<Class> = Class::ALL.to_vec();
        classes.dedup();
        assert_eq!(classes.len(), Class::ALL.len());
        let mut counters: Vec<Counter> = Counter::ALL.to_vec();
        counters.dedup();
        assert_eq!(counters.len(), Counter::COUNT);
        assert_eq!(
            Counter::ALL.iter().map(|c| *c as usize).max().unwrap() + 1,
            Counter::COUNT
        );
    }

    #[test]
    fn wait_priorities_only_on_wait_classes() {
        for c in Class::ALL {
            let is_wait = c.idle_priority().is_some();
            match c {
                Class::DiskSeek
                | Class::DiskRotation
                | Class::DiskMedia
                | Class::AckWindowWait
                | Class::WireTransit
                | Class::NetRecvWait
                | Class::RpcWait
                | Class::PipeWait => assert!(is_wait, "{c:?} should be a wait class"),
                _ => assert!(!is_wait, "{c:?} should not be a wait class"),
            }
        }
    }
}
