//! The event recorder and online attribution engine.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::class::{Class, Counter};

/// A cycle-stamped trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Simulated time (cycles) at which the event was recorded.
    pub t: u64,
    /// Engine tid of the process concerned; `0` is the host thread.
    pub pid: u32,
    /// What happened.
    pub kind: EventKind,
}

/// The event payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A process came into existence under this name.
    Spawn(String),
    /// A span of class `Class` opened on `pid`'s stack.
    Enter(Class),
    /// The matching span closed.
    Exit(Class),
    /// The clock advanced by `cy` cycles of CPU work on `pid`.
    Charge {
        /// Cycles charged.
        cy: u64,
    },
    /// The engine spent `cy` cycles picking `pid` to run.
    Dispatch {
        /// Scheduler cost in cycles.
        cy: u64,
    },
    /// The clock jumped `cy` cycles forward to the next timer because no
    /// process was runnable.
    Idle {
        /// Idle cycles skipped.
        cy: u64,
    },
}

impl Event {
    /// Stable one-line rendering, used for byte-identical stream checks.
    pub fn render(&self) -> String {
        match &self.kind {
            EventKind::Spawn(name) => format!("{} p{} spawn {}", self.t, self.pid, name),
            EventKind::Enter(c) => format!("{} p{} enter {}", self.t, self.pid, c.label()),
            EventKind::Exit(c) => format!("{} p{} exit {}", self.t, self.pid, c.label()),
            EventKind::Charge { cy } => format!("{} p{} charge {}", self.t, self.pid, cy),
            EventKind::Dispatch { cy } => format!("{} p{} dispatch {}", self.t, self.pid, cy),
            EventKind::Idle { cy } => format!("{} p{} idle {}", self.t, self.pid, cy),
        }
    }
}

/// A reusable bank of always-on atomic counters.
///
/// The kernel keeps one per machine (so per-kernel stats survive) and the
/// tracer embeds one aggregating across the whole simulation.
#[derive(Debug, Default)]
pub struct CounterSet {
    vals: [AtomicU64; Counter::COUNT],
}

impl CounterSet {
    /// A zeroed counter bank.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Adds `n` to `c`.
    pub fn add(&self, c: Counter, n: u64) {
        self.vals[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize].load(Ordering::Relaxed)
    }

    /// Snapshot of every counter, indexed by `Counter as usize`.
    pub fn snapshot(&self) -> [u64; Counter::COUNT] {
        let mut out = [0u64; Counter::COUNT];
        for (i, v) in self.vals.iter().enumerate() {
            out[i] = v.load(Ordering::Relaxed);
        }
        out
    }
}

/// One `(class, pid)` cell of a [`Profile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileRow {
    /// Attribution class.
    pub class: Class,
    /// Process the cycles belong to (0 = host).
    pub pid: u32,
    /// Process name at spawn, if known.
    pub name: String,
    /// Cycles attributed to this cell.
    pub cycles: u64,
}

/// The folded attribution result of one tracer.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Per-`(class, pid)` cycles, ordered by class then pid.
    pub rows: Vec<ProfileRow>,
    /// Total cycles attributed (equals elapsed when instrumentation is
    /// complete: the clock only moves through charge/dispatch/idle).
    pub attributed: u64,
    /// Cycles that landed in [`Class::UnknownIdle`].
    pub unknown_idle: u64,
}

impl Profile {
    /// Total cycles in `class` across all pids.
    pub fn class_total(&self, class: Class) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.cycles)
            .sum()
    }

    /// Fraction of `elapsed` that was attributed to a *known* class.
    pub fn coverage(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            return 1.0;
        }
        (self.attributed - self.unknown_idle) as f64 / elapsed as f64
    }
}

/// The ring's internal record: a fixed-size `Copy` packing of [`Event`].
/// Spawn names are interned into a side arena at record time, so pushing
/// an event never allocates — the ring is one preallocated slab and every
/// payload is inline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PackedKind {
    /// Index into `Inner::name_arena`.
    Spawn(u32),
    Enter(Class),
    Exit(Class),
    Charge(u64),
    Dispatch(u64),
    Idle(u64),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Packed {
    t: u64,
    pid: u32,
    kind: PackedKind,
}

struct Inner {
    capacity: usize,
    ring: Vec<Packed>,
    dropped: u64,
    /// Interned spawn names; `PackedKind::Spawn` and `names` index here.
    name_arena: Vec<String>,
    /// Reverse lookup for interning (BTreeMap: deterministic iteration).
    name_ids: BTreeMap<String, u32>,
    /// Spawn-time name of each pid, as an arena index.
    names: BTreeMap<u32, u32>,
    /// Open span stacks per pid.
    stacks: BTreeMap<u32, Vec<Class>>,
    /// Attributed cycles per (class, pid).
    cycles: BTreeMap<(Class, u32), u64>,
    /// Folded stacks: "name;span;span cycles".
    folded: BTreeMap<String, u64>,
    attributed: u64,
    unknown_idle: u64,
}

impl Inner {
    fn new(capacity: usize) -> Inner {
        Inner {
            capacity,
            ring: Vec::new(),
            dropped: 0,
            name_arena: Vec::new(),
            name_ids: BTreeMap::new(),
            names: BTreeMap::new(),
            stacks: BTreeMap::new(),
            cycles: BTreeMap::new(),
            folded: BTreeMap::new(),
            attributed: 0,
            unknown_idle: 0,
        }
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = self.name_arena.len() as u32;
        self.name_arena.push(name.to_string());
        self.name_ids.insert(name.to_string(), id);
        id
    }

    fn pack(&mut self, ev: &Event) -> Packed {
        let kind = match &ev.kind {
            EventKind::Spawn(name) => PackedKind::Spawn(self.intern(name)),
            EventKind::Enter(c) => PackedKind::Enter(*c),
            EventKind::Exit(c) => PackedKind::Exit(*c),
            EventKind::Charge { cy } => PackedKind::Charge(*cy),
            EventKind::Dispatch { cy } => PackedKind::Dispatch(*cy),
            EventKind::Idle { cy } => PackedKind::Idle(*cy),
        };
        Packed {
            t: ev.t,
            pid: ev.pid,
            kind,
        }
    }

    /// Renders a packed record exactly as [`Event::render`] would have
    /// rendered the original event (byte-identical dumps).
    fn render(&self, p: Packed) -> String {
        match p.kind {
            PackedKind::Spawn(id) => {
                format!("{} p{} spawn {}", p.t, p.pid, self.name_arena[id as usize])
            }
            PackedKind::Enter(c) => format!("{} p{} enter {}", p.t, p.pid, c.label()),
            PackedKind::Exit(c) => format!("{} p{} exit {}", p.t, p.pid, c.label()),
            PackedKind::Charge(cy) => format!("{} p{} charge {}", p.t, p.pid, cy),
            PackedKind::Dispatch(cy) => format!("{} p{} dispatch {}", p.t, p.pid, cy),
            PackedKind::Idle(cy) => format!("{} p{} idle {}", p.t, p.pid, cy),
        }
    }

    fn proc_label(&self, pid: u32) -> String {
        match self.names.get(&pid) {
            Some(&id) => self.name_arena[id as usize].clone(),
            None if pid == 0 => "host".to_string(),
            None => format!("p{pid}"),
        }
    }

    fn fold_key(&self, pid: u32, extra: Option<Class>) -> String {
        let mut key = self.proc_label(pid);
        for c in self.stacks.get(&pid).into_iter().flatten() {
            key.push(';');
            key.push_str(c.label());
        }
        match extra {
            Some(c) => {
                key.push(';');
                key.push_str(c.label());
            }
            None if self.stacks.get(&pid).is_none_or(|s| s.is_empty()) => {
                key.push(';');
                key.push_str(Class::User.label());
            }
            None => {}
        }
        key
    }

    /// Folds one event into the attribution state.
    fn apply(&mut self, ev: Packed) {
        match ev.kind {
            PackedKind::Spawn(id) => {
                self.names.insert(ev.pid, id);
                self.stacks.entry(ev.pid).or_default();
            }
            PackedKind::Enter(c) => {
                self.stacks.entry(ev.pid).or_default().push(c);
            }
            PackedKind::Exit(c) => {
                let stack = self.stacks.entry(ev.pid).or_default();
                // Tolerate interleaved guards: pop through to the match.
                while let Some(top) = stack.pop() {
                    if top == c {
                        break;
                    }
                }
            }
            PackedKind::Charge(cy) => {
                let class = self
                    .stacks
                    .get(&ev.pid)
                    .and_then(|s| s.last().copied())
                    .unwrap_or(Class::User);
                *self.cycles.entry((class, ev.pid)).or_default() += cy;
                let key = self.fold_key(ev.pid, None);
                *self.folded.entry(key).or_default() += cy;
                self.attributed += cy;
            }
            PackedKind::Dispatch(cy) => {
                *self.cycles.entry((Class::SchedScan, ev.pid)).or_default() += cy;
                let key = format!("{};{}", self.proc_label(ev.pid), Class::SchedScan.label());
                *self.folded.entry(key).or_default() += cy;
                self.attributed += cy;
            }
            PackedKind::Idle(cy) => {
                // Attribute system idle to the best open wait span across
                // all blocked processes (innermost occurrence per stack).
                let mut best: Option<(u8, u32, Class)> = None;
                for (pid, stack) in &self.stacks {
                    for c in stack.iter().rev() {
                        if let Some(p) = c.idle_priority() {
                            if best.is_none_or(|(bp, bpid, _)| p < bp || (p == bp && *pid < bpid))
                            {
                                best = Some((p, *pid, *c));
                            }
                            break;
                        }
                    }
                }
                match best {
                    Some((_, pid, class)) => {
                        *self.cycles.entry((class, pid)).or_default() += cy;
                        let key = self.fold_key(pid, None);
                        *self.folded.entry(key).or_default() += cy;
                    }
                    None => {
                        *self.cycles.entry((Class::UnknownIdle, 0)).or_default() += cy;
                        *self
                            .folded
                            .entry(Class::UnknownIdle.label().to_string())
                            .or_default() += cy;
                        self.unknown_idle += cy;
                    }
                }
                self.attributed += cy;
            }
        }
    }
}

/// The per-simulation trace sink: a bounded event ring plus the online
/// attribution state, guarded by the `enabled` flag.
pub struct Tracer {
    enabled: AtomicBool,
    counters: CounterSet,
    inner: Mutex<Inner>,
}

/// Default ring capacity when enabling without an explicit size.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// A disabled tracer (counters still work; events are ignored).
    pub fn new() -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            counters: CounterSet::new(),
            inner: Mutex::new(Inner::new(DEFAULT_RING_CAPACITY)),
        }
    }

    /// Starts recording events into a fresh ring of `capacity` events.
    /// Attribution state is reset too; counters are left running. The
    /// whole ring is allocated up front so recording never reallocates
    /// (disabled tracers — the common case — hold no slab at all).
    pub fn enable(&self, capacity: usize) {
        let mut g = self.inner.lock();
        *g = Inner::new(capacity.max(1));
        let cap = g.capacity;
        g.ring.reserve_exact(cap);
        drop(g);
        self.enabled.store(true, Ordering::Release);
    }

    /// Stops recording (the accumulated state stays readable).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether events are being recorded. The disabled fast path of
    /// [`Tracer::record`] is exactly this load.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// The always-on counter bank.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Shorthand for `counters().add(c, n)`.
    pub fn count(&self, c: Counter, n: u64) {
        self.counters.add(c, n);
    }

    /// Records an event: folds it into attribution, then pushes it into
    /// the ring (counting, never silently eating, overflow drops).
    pub fn record(&self, ev: Event) {
        if !self.is_enabled() {
            return;
        }
        let mut g = self.inner.lock();
        let packed = g.pack(&ev);
        g.apply(packed);
        if g.ring.len() >= g.capacity {
            g.dropped += 1;
            self.counters.add(Counter::TraceDrops, 1);
        } else {
            g.ring.push(packed);
        }
    }

    /// Number of events dropped on ring overflow since the last enable.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Number of events currently retained in the ring.
    pub fn retained(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// The retained event stream rendered one event per line, terminated
    /// by a `dropped N` line — stable bytes for determinism checks.
    pub fn dump(&self) -> String {
        let g = self.inner.lock();
        let mut out = String::new();
        for &ev in &g.ring {
            out.push_str(&g.render(ev));
            out.push('\n');
        }
        out.push_str(&format!("dropped {}\n", g.dropped));
        out
    }

    /// The attribution result so far.
    pub fn profile(&self) -> Profile {
        let g = self.inner.lock();
        let rows = g
            .cycles
            .iter()
            .map(|(&(class, pid), &cycles)| ProfileRow {
                class,
                pid,
                name: g.proc_label(pid),
                cycles,
            })
            .collect();
        Profile {
            rows,
            attributed: g.attributed,
            unknown_idle: g.unknown_idle,
        }
    }

    /// Folded stacks ("proc;span;span cycles" per line, key-sorted) for
    /// flame-graph tooling.
    pub fn folded(&self) -> String {
        let g = self.inner.lock();
        let mut out = String::new();
        for (key, cy) in &g.folded {
            out.push_str(&format!("{key} {cy}\n"));
        }
        out
    }

    /// Folded stacks as a map (for merging into a session).
    pub fn folded_map(&self) -> BTreeMap<String, u64> {
        self.inner.lock().folded.clone()
    }

    /// Per-(class, name) cycles for session merging (pids from different
    /// sims collide, names are the stable key).
    pub fn cycles_by_name(&self) -> BTreeMap<(Class, String), u64> {
        let g = self.inner.lock();
        let mut out: BTreeMap<(Class, String), u64> = BTreeMap::new();
        for (&(class, pid), &cy) in &g.cycles {
            *out.entry((class, g.proc_label(pid))).or_default() += cy;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, pid: u32, kind: EventKind) -> Event {
        Event { t, pid, kind }
    }

    #[test]
    fn disabled_tracer_records_nothing_but_counts() {
        let tr = Tracer::new();
        tr.record(ev(0, 1, EventKind::Charge { cy: 100 }));
        tr.count(Counter::Syscalls, 3);
        assert_eq!(tr.retained(), 0);
        assert_eq!(tr.profile().attributed, 0);
        assert_eq!(tr.counters().get(Counter::Syscalls), 3);
    }

    #[test]
    fn charge_attributes_to_innermost_span() {
        let tr = Tracer::new();
        tr.enable(1024);
        tr.record(ev(0, 1, EventKind::Spawn("worker".into())));
        tr.record(ev(0, 1, EventKind::Enter(Class::TrapEntry)));
        tr.record(ev(0, 1, EventKind::Enter(Class::DataCopy)));
        tr.record(ev(5, 1, EventKind::Charge { cy: 5 }));
        tr.record(ev(5, 1, EventKind::Exit(Class::DataCopy)));
        tr.record(ev(9, 1, EventKind::Charge { cy: 4 }));
        tr.record(ev(9, 1, EventKind::Exit(Class::TrapEntry)));
        tr.record(ev(10, 1, EventKind::Charge { cy: 1 }));
        let p = tr.profile();
        assert_eq!(p.class_total(Class::DataCopy), 5);
        assert_eq!(p.class_total(Class::TrapEntry), 4);
        assert_eq!(p.class_total(Class::User), 1);
        assert_eq!(p.attributed, 10);
        let folded = tr.folded();
        assert!(folded.contains("worker;trap entry;data copy 5"), "{folded}");
        assert!(folded.contains("worker;trap entry 4"), "{folded}");
        assert!(folded.contains("worker;user 1"), "{folded}");
    }

    #[test]
    fn idle_prefers_highest_priority_wait_span() {
        let tr = Tracer::new();
        tr.enable(1024);
        tr.record(ev(0, 1, EventKind::Spawn("client".into())));
        tr.record(ev(0, 2, EventKind::Spawn("nfsd".into())));
        // Client parked in a generic receive, server's disk rotating.
        tr.record(ev(0, 1, EventKind::Enter(Class::NetRecvWait)));
        tr.record(ev(0, 2, EventKind::Enter(Class::DiskRotation)));
        tr.record(ev(50, 0, EventKind::Idle { cy: 50 }));
        let p = tr.profile();
        assert_eq!(p.class_total(Class::DiskRotation), 50);
        assert_eq!(p.class_total(Class::NetRecvWait), 0);
        assert_eq!(p.unknown_idle, 0);
    }

    #[test]
    fn idle_with_no_wait_span_is_counted_unknown() {
        let tr = Tracer::new();
        tr.enable(16);
        tr.record(ev(10, 0, EventKind::Idle { cy: 10 }));
        let p = tr.profile();
        assert_eq!(p.unknown_idle, 10);
        assert_eq!(p.class_total(Class::UnknownIdle), 10);
        assert!(p.coverage(10) < 0.01);
    }

    #[test]
    fn ring_overflow_drops_are_counted_and_attribution_survives() {
        let tr = Tracer::new();
        tr.enable(4);
        for i in 0..10u64 {
            tr.record(ev(i, 1, EventKind::Charge { cy: 1 }));
        }
        assert_eq!(tr.retained(), 4);
        assert_eq!(tr.dropped(), 6);
        assert_eq!(tr.counters().get(Counter::TraceDrops), 6);
        // Attribution is online: every charge counted despite the drops.
        assert_eq!(tr.profile().attributed, 10);
        assert!(tr.dump().ends_with("dropped 6\n"));
    }

    #[test]
    fn dispatch_goes_to_sched_scan() {
        let tr = Tracer::new();
        tr.enable(64);
        tr.record(ev(0, 3, EventKind::Dispatch { cy: 7 }));
        assert_eq!(tr.profile().class_total(Class::SchedScan), 7);
    }

    #[test]
    fn dump_is_deterministic_for_identical_event_sequences() {
        let feed = |tr: &Tracer| {
            tr.enable(128);
            tr.record(ev(0, 1, EventKind::Spawn("a".into())));
            tr.record(ev(2, 1, EventKind::Enter(Class::ProtoCpu)));
            tr.record(ev(5, 1, EventKind::Charge { cy: 3 }));
            tr.record(ev(5, 1, EventKind::Exit(Class::ProtoCpu)));
            tr.record(ev(9, 0, EventKind::Idle { cy: 4 }));
            tr.dump()
        };
        let t1 = Tracer::new();
        let t2 = Tracer::new();
        assert_eq!(feed(&t1), feed(&t2));
    }

    #[test]
    fn enable_resets_state() {
        let tr = Tracer::new();
        tr.enable(2);
        tr.record(ev(0, 1, EventKind::Charge { cy: 1 }));
        tr.record(ev(1, 1, EventKind::Charge { cy: 1 }));
        tr.record(ev(2, 1, EventKind::Charge { cy: 1 }));
        assert_eq!(tr.dropped(), 1);
        tr.enable(8);
        assert_eq!(tr.dropped(), 0);
        assert_eq!(tr.retained(), 0);
        assert_eq!(tr.profile().attributed, 0);
    }
}
