//! Cross-simulation profiling sessions.
//!
//! Every benchmark entry point in `tnt-core` boots its own short-lived
//! `Sim`, so profiling an *experiment* means aggregating over many
//! tracers. A session is a process-global collector: while one is active
//! (see [`run`]), every newly created `Sim` auto-enables its tracer and
//! publishes its attribution into the collector when `Sim::run` finishes.
//! Components without a `Sim` (the raw memory-system model) contribute
//! through [`add_counter`].
//!
//! Sessions are serialized by a global lock so concurrently running tests
//! cannot bleed into each other's reports.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::class::{Class, Counter};
use crate::tracer::Tracer;

/// Aggregated attribution across every `Sim` that ran during a session.
#[derive(Clone, Debug, Default)]
pub struct SessionReport {
    /// Number of simulations that published into the session.
    pub sims: u64,
    /// Sum of final simulated clocks (cycles).
    pub elapsed: u64,
    /// Sum of attributed cycles (equals `elapsed` when instrumentation
    /// covers every clock-advance path).
    pub attributed: u64,
    /// Cycles attributed to [`Class::UnknownIdle`].
    pub unknown_idle: u64,
    /// Trace-ring drops across all sims (counted, never silent).
    pub dropped: u64,
    /// Cycles per (class, process name).
    pub class_cycles: BTreeMap<(Class, String), u64>,
    /// Counter totals, indexed by `Counter as usize`.
    pub counters: [u64; Counter::COUNT],
    /// Merged folded stacks.
    pub folded: BTreeMap<String, u64>,
}

impl SessionReport {
    /// Total cycles in `class` across all processes.
    pub fn class_total(&self, class: Class) -> u64 {
        self.class_cycles
            .iter()
            .filter(|((c, _), _)| *c == class)
            .map(|(_, cy)| *cy)
            .sum()
    }

    /// Per-class totals, largest first (ties broken by class order).
    pub fn by_class(&self) -> Vec<(Class, u64)> {
        let mut totals: Vec<(Class, u64)> = Class::ALL
            .iter()
            .map(|&c| (c, self.class_total(c)))
            .filter(|&(_, cy)| cy > 0)
            .collect();
        totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        totals
    }

    /// Fraction of elapsed cycles attributed to a known class.
    pub fn coverage(&self) -> f64 {
        if self.elapsed == 0 {
            return 1.0;
        }
        (self.attributed.saturating_sub(self.unknown_idle)) as f64 / self.elapsed as f64
    }

    /// Counter total for `c`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Checks cycle conservation: with tracing enabled, the simulated
    /// clock only moves through `Charge`, `Dispatch` and `Idle` events,
    /// every one of which the tracer attributes to a class — so the
    /// attributed total must equal the elapsed total *exactly*, and the
    /// per-class breakdown must sum back to it. A mismatch means a
    /// clock-advance path escaped instrumentation (cycles charged but
    /// never attributed, or attributed twice) and the profiler's
    /// percentages can no longer be trusted.
    ///
    /// Returns `Ok(())` when both legs hold, or a message naming the
    /// drift.
    pub fn conservation(&self) -> Result<(), String> {
        if self.attributed != self.elapsed {
            return Err(format!(
                "attributed {} cycles != elapsed {} (drift {:+}): a clock-advance path \
                 escaped instrumentation",
                self.attributed,
                self.elapsed,
                self.attributed as i128 - self.elapsed as i128
            ));
        }
        let class_sum: u64 = self.class_cycles.values().sum();
        if class_sum != self.attributed {
            return Err(format!(
                "per-class cycles sum to {} but {} were attributed (drift {:+}): \
                 attribution lost or double-counted cycles",
                class_sum,
                self.attributed,
                class_sum as i128 - self.attributed as i128
            ));
        }
        Ok(())
    }

    /// Folded stacks rendered one per line for flame-graph tooling.
    pub fn folded_text(&self) -> String {
        let mut out = String::new();
        for (key, cy) in &self.folded {
            out.push_str(&format!("{key} {cy}\n"));
        }
        out
    }

    /// Renders the breakdown as an indented text table with a counter
    /// footer — the block `reproduce --profile` prints under each
    /// table/figure.
    pub fn render(&self, label: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("  profile: {label}\n"));
        out.push_str("    class                  cycles      %\n");
        let denom = self.elapsed.max(1) as f64;
        for (class, cy) in self.by_class() {
            out.push_str(&format!(
                "    {:<20} {:>12} {:>5.1}%\n",
                class.label(),
                cy,
                100.0 * cy as f64 / denom
            ));
        }
        out.push_str(&format!(
            "    {:<20} {:>12} 100.0%   ({} sims, coverage {:.1}%)\n",
            "total elapsed",
            self.elapsed,
            self.sims,
            100.0 * self.coverage()
        ));
        let footer: Vec<String> = Counter::ALL
            .iter()
            .filter(|&&c| self.counter(c) > 0)
            .map(|&c| format!("{}={}", c.label(), self.counter(c)))
            .collect();
        if !footer.is_empty() {
            out.push_str(&format!("    counters: {}\n", footer.join(", ")));
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "    trace ring overflow: {} events dropped (attribution unaffected)\n",
                self.dropped
            ));
        }
        out
    }
}

struct SessionState {
    capacity: usize,
    report: SessionReport,
}

static GATE: Mutex<()> = Mutex::new(());
static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<SessionState>> = Mutex::new(None);

/// Whether a profiling session is currently collecting.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Ring capacity newly booted sims should enable their tracer with.
pub fn ring_capacity() -> usize {
    STATE
        .lock()
        .as_ref()
        .map_or(crate::tracer::DEFAULT_RING_CAPACITY, |s| s.capacity)
}

/// Folds one finished simulation's tracer into the active session (no-op
/// when no session is active).
pub fn publish(tracer: &Tracer, elapsed: u64) {
    let mut g = STATE.lock();
    let Some(state) = g.as_mut() else {
        return;
    };
    let profile = tracer.profile();
    let r = &mut state.report;
    r.sims += 1;
    r.elapsed += elapsed;
    r.attributed += profile.attributed;
    r.unknown_idle += profile.unknown_idle;
    r.dropped += tracer.dropped();
    for ((class, name), cy) in tracer.cycles_by_name() {
        *r.class_cycles.entry((class, name)).or_default() += cy;
    }
    for (key, cy) in tracer.folded_map() {
        *r.folded.entry(key).or_default() += cy;
    }
    let snap = tracer.counters().snapshot();
    for (i, v) in snap.iter().enumerate() {
        r.counters[i] += v;
    }
}

/// Adds directly to the session's counters — for components that have no
/// `Sim` (the raw memory-system model). No-op when no session is active.
pub fn add_counter(c: Counter, n: u64) {
    if !active() {
        return;
    }
    if let Some(state) = STATE.lock().as_mut() {
        state.report.counters[c as usize] += n;
    }
}

/// Clears the session flag even if the profiled closure panics.
struct Deactivate;

impl Drop for Deactivate {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::Release);
        *STATE.lock() = None;
    }
}

/// Runs `f` with a profiling session active and returns its result plus
/// the aggregated report. Sessions are globally serialized; nesting one
/// inside `f` deadlocks, so don't.
pub fn run<T>(capacity: usize, f: impl FnOnce() -> T) -> (T, SessionReport) {
    let _gate = GATE.lock();
    *STATE.lock() = Some(SessionState {
        capacity,
        report: SessionReport::default(),
    });
    ACTIVE.store(true, Ordering::Release);
    let cleanup = Deactivate;
    let out = f();
    ACTIVE.store(false, Ordering::Release);
    let report = STATE
        .lock()
        .take()
        .map(|s| s.report)
        .unwrap_or_default();
    std::mem::forget(cleanup);
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Event, EventKind};

    #[test]
    fn session_collects_published_tracers() {
        let ((), report) = run(1024, || {
            assert!(active());
            let tr = Tracer::new();
            tr.enable(ring_capacity());
            tr.record(Event {
                t: 0,
                pid: 1,
                kind: EventKind::Spawn("w".into()),
            });
            tr.record(Event {
                t: 0,
                pid: 1,
                kind: EventKind::Enter(Class::ProtoCpu),
            });
            tr.record(Event {
                t: 4,
                pid: 1,
                kind: EventKind::Charge { cy: 4 },
            });
            tr.count(Counter::TcpSegments, 2);
            publish(&tr, 4);
            add_counter(Counter::L1Misses, 9);
        });
        assert!(!active());
        assert_eq!(report.sims, 1);
        assert_eq!(report.elapsed, 4);
        assert_eq!(report.class_total(Class::ProtoCpu), 4);
        assert_eq!(report.counter(Counter::TcpSegments), 2);
        assert_eq!(report.counter(Counter::L1Misses), 9);
        assert!((report.coverage() - 1.0).abs() < 1e-9);
        let rendered = report.render("test");
        assert!(rendered.contains("protocol cpu"), "{rendered}");
        assert!(rendered.contains("tcp segments=2"), "{rendered}");
    }

    #[test]
    fn conservation_holds_for_published_tracers() {
        let ((), report) = run(1024, || {
            let tr = Tracer::new();
            tr.enable(ring_capacity());
            tr.record(Event {
                t: 0,
                pid: 1,
                kind: EventKind::Enter(Class::TrapEntry),
            });
            tr.record(Event {
                t: 7,
                pid: 1,
                kind: EventKind::Charge { cy: 7 },
            });
            tr.record(Event {
                t: 9,
                pid: 1,
                kind: EventKind::Dispatch { cy: 2 },
            });
            tr.record(Event {
                t: 14,
                pid: 0,
                kind: EventKind::Idle { cy: 5 },
            });
            publish(&tr, 14);
        });
        report.conservation().expect("conservation must hold");
    }

    #[test]
    fn conservation_catches_unattributed_and_lost_cycles() {
        // Elapsed moved without a matching Charge event: leg one fails.
        let mut r = SessionReport {
            elapsed: 100,
            attributed: 90,
            ..SessionReport::default()
        };
        r.class_cycles.insert((Class::User, "p".into()), 90);
        let err = r.conservation().unwrap_err();
        assert!(err.contains("escaped instrumentation"), "{err}");

        // Attributed total and per-class breakdown disagree: leg two.
        let mut r = SessionReport {
            elapsed: 100,
            attributed: 100,
            ..SessionReport::default()
        };
        r.class_cycles.insert((Class::User, "p".into()), 60);
        let err = r.conservation().unwrap_err();
        assert!(err.contains("double-counted"), "{err}");
    }

    #[test]
    fn publish_without_session_is_noop() {
        let tr = Tracer::new();
        tr.enable(16);
        tr.record(Event {
            t: 1,
            pid: 1,
            kind: EventKind::Charge { cy: 1 },
        });
        publish(&tr, 1);
        add_counter(Counter::Forks, 1);
        let ((), report) = run(16, || {});
        assert_eq!(report.sims, 0);
        assert_eq!(report.counter(Counter::Forks), 0);
    }

    #[test]
    fn sessions_reset_between_runs() {
        let ((), first) = run(16, || {
            let tr = Tracer::new();
            tr.enable(16);
            tr.record(Event {
                t: 2,
                pid: 1,
                kind: EventKind::Charge { cy: 2 },
            });
            publish(&tr, 2);
        });
        assert_eq!(first.elapsed, 2);
        let ((), second) = run(16, || {});
        assert_eq!(second.elapsed, 0);
        assert_eq!(second.sims, 0);
    }
}
