#![warn(missing_docs)]

//! Cycle-attributed kernel tracing for the `tnt` simulation.
//!
//! This crate sits *below* `tnt-sim` in the dependency graph: it knows
//! nothing about the engine, only about cycle-stamped events. The engine
//! and the kernel/fs/net/nfs models emit three kinds of information:
//!
//! - **Spans** ([`Class`] enter/exit) bracketing where cycles go — trap
//!   entry, scheduler scan, data copies, disk seek/rotation/media phases,
//!   protocol CPU, delayed-ack/window waits, RPC wire+server time;
//! - **Clock advances** (charge / dispatch-cost / idle-jump), each carrying
//!   the cycles by which the simulated clock moved;
//! - **Counters** ([`Counter`]), always-on atomic tallies (syscalls, cache
//!   hits, retransmits, ...) that cost nothing measurable to bump.
//!
//! The [`Tracer`] folds the event stream *online* into a per-`(Class, pid)`
//! cycle breakdown and folded stacks (flame-graph text), so the bounded
//! event ring can overflow — with every drop counted — without corrupting
//! attribution. Because the simulation clock only moves through the three
//! advance paths, attribution is exact: the attributed total equals the
//! elapsed simulated time, cycle for cycle.
//!
//! The [`session`] module aggregates across many short-lived `Sim`
//! instances (every benchmark in the harness boots its own), which is what
//! `reproduce --profile` consumes.
//!
//! Recording is zero-cost when disabled in the only currency the simulator
//! cares about: a disabled (or enabled!) tracer never moves the simulated
//! clock, and the disabled fast path is a single relaxed atomic load.

mod class;
pub mod session;
mod tracer;

pub use class::{Class, Counter};
pub use session::SessionReport;
pub use tracer::{CounterSet, Event, EventKind, Profile, ProfileRow, Tracer};
