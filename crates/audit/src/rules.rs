//! The deny-list: seven determinism/correctness rules tuned to this
//! workspace.
//!
//! Each rule is a predicate over the lexed `code` view of a line (see
//! [`crate::lexer`]) plus a path scope. The scopes encode where the
//! invariant actually matters:
//!
//! * `hashmap-iter` — everywhere: `HashMap`/`HashSet` iteration order
//!   is nondeterministic, and in this repo "iteration reached an
//!   output" has already produced a nondeterministic deadlock message.
//!   Keyed lookup that is never iterated may keep a `HashMap` behind
//!   an `audit:allow`.
//! * `wallclock` — everywhere except `runner/src/pool.rs`, the one
//!   module whose job is host timing. Simulated time must come from
//!   `Sim::now()`; a stray `Instant::now()` in a model silently turns
//!   a deterministic experiment into a flaky one.
//! * `float-eq` — experiment code (`harness`, `core`, `runner`):
//!   `f64` equality against literals is how tolerance bugs start.
//! * `unwrap` — simulator crates (`sim`, `os`, `fs`, `net`, `nfs`,
//!   `trace`): a panic inside a simulated process aborts the baton
//!   chain; errors must flow out as `SimError`.
//! * `must-use-cycles` — everywhere: a dropped `Cycles` return is a
//!   silently-lost charge, which breaks cycle conservation.
//! * `host-thread-spawn` — everywhere except the engine itself
//!   (`sim/src/engine.rs`, whose job is hosting simulated processes on
//!   real threads) and the worker pool (`runner/src/pool.rs`): a host
//!   thread spawned anywhere else runs outside the baton discipline,
//!   and crowds belong on the lite scheduler, not on OS threads.
//! * `nondet-taint` — everywhere: the cross-file pass in
//!   [`crate::taint`]. A nondeterminism source (host clock, entropy
//!   RNG, thread id, hash-order iteration) inside the callee closure
//!   of an experiment-output sink can leak into a blessed statistic;
//!   the per-line rules cannot see that reach, this pass can.

use crate::lexer::Line;

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `HashMap`/`HashSet` in scanned source.
    HashmapIter,
    /// `Instant::now` / `SystemTime::now` outside `runner::pool`.
    Wallclock,
    /// `f64` comparison against a float literal in experiment code.
    FloatEq,
    /// `.unwrap()` in non-test simulator code.
    Unwrap,
    /// `pub fn ... -> Cycles` without `#[must_use]`.
    MustUseCycles,
    /// `thread::spawn`/`Builder`/`scope` outside the engine and the
    /// worker pool.
    HostThreadSpawn,
    /// Nondeterminism source reachable from an experiment-output sink
    /// (the cross-file taint pass in [`crate::taint`]).
    NondetTaint,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 7] = [
        Rule::HashmapIter,
        Rule::Wallclock,
        Rule::FloatEq,
        Rule::Unwrap,
        Rule::MustUseCycles,
        Rule::HostThreadSpawn,
        Rule::NondetTaint,
    ];

    /// The slug used in reports and `audit:allow(<slug>)` annotations.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::HashmapIter => "hashmap-iter",
            Rule::Wallclock => "wallclock",
            Rule::FloatEq => "float-eq",
            Rule::Unwrap => "unwrap",
            Rule::MustUseCycles => "must-use-cycles",
            Rule::HostThreadSpawn => "host-thread-spawn",
            Rule::NondetTaint => "nondet-taint",
        }
    }

    /// Looks a slug back up (for allow-annotation parsing).
    pub fn from_slug(slug: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.slug() == slug)
    }

    /// Does this rule apply to the file at `path` (workspace-relative,
    /// forward slashes)?
    pub fn applies_to(self, path: &str) -> bool {
        match self {
            Rule::HashmapIter | Rule::MustUseCycles => true,
            Rule::Wallclock => !path.ends_with("runner/src/pool.rs"),
            Rule::FloatEq => {
                in_crate(path, "harness") || in_crate(path, "core") || in_crate(path, "runner")
            }
            Rule::Unwrap => {
                ["sim", "proc", "race", "os", "fs", "net", "nfs", "trace", "farm"]
                    .iter()
                    .any(|c| in_crate(path, c))
            }
            Rule::HostThreadSpawn => {
                !path.ends_with("sim/src/engine.rs") && !path.ends_with("runner/src/pool.rs")
            }
            Rule::NondetTaint => true,
        }
    }

    /// The message attached to a hit.
    pub fn message(self) -> &'static str {
        match self {
            Rule::HashmapIter => {
                "HashMap/HashSet has nondeterministic iteration order; use BTreeMap/BTreeSet \
                 or sort before anything reaches an output path"
            }
            Rule::Wallclock => {
                "host wall-clock read outside runner::pool; simulated code must use Sim::now()"
            }
            Rule::FloatEq => {
                "f64 compared against a float literal without tolerance; use an epsilon or \
                 integer cycles"
            }
            Rule::Unwrap => {
                "unwrap() in simulator code; panics abort the baton chain — return SimError"
            }
            Rule::MustUseCycles => {
                "public function returns Cycles without #[must_use]; a dropped return is a \
                 silently-lost charge"
            }
            Rule::HostThreadSpawn => {
                "host thread spawned outside the engine/worker pool; simulated work belongs \
                 on Sim::spawn (threaded) or the lite scheduler (crowds)"
            }
            Rule::NondetTaint => {
                "nondeterminism source reachable from an experiment-output sink; anything \
                 feeding an ExperimentRecord/StatLine must be a pure function of the seed"
            }
        }
    }

    /// Runs the per-line check (all rules except `must-use-cycles`,
    /// which needs signature lookahead and runs in the scanner).
    pub fn hits_line(self, code: &str) -> bool {
        match self {
            Rule::HashmapIter => has_word(code, "HashMap") || has_word(code, "HashSet"),
            Rule::Wallclock => code.contains("Instant::now") || code.contains("SystemTime::now"),
            Rule::FloatEq => float_literal_comparison(code),
            Rule::Unwrap => code.contains(".unwrap()"),
            // Handled by whole-corpus passes, not per-line checks: the
            // scanner runs `must_use_cycles_hits` and `taint::analyze`.
            Rule::MustUseCycles | Rule::NondetTaint => false,
            Rule::HostThreadSpawn => {
                code.contains("thread::spawn")
                    || code.contains("thread::Builder")
                    || code.contains("thread::scope")
            }
        }
    }
}

fn in_crate(path: &str, name: &str) -> bool {
    path.starts_with(&format!("crates/{name}/"))
}

/// Word-boundary containment: `HashMap` hits, `MyHashMapLike` does not.
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident_char(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Detects `==` / `!=` with a float literal on either side.
fn float_literal_comparison(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0usize;
    while i + 1 < chars.len() {
        let is_eq = chars[i] == '=' && chars[i + 1] == '=';
        let is_ne = chars[i] == '!' && chars[i + 1] == '=';
        if is_eq || is_ne {
            // Skip <=, >=, ==> (no such op), pattern `=>` handled by
            // requiring a second '='; reject `a <= b` by looking back.
            let prev = if i > 0 { chars[i - 1] } else { ' ' };
            if is_eq && (prev == '<' || prev == '>' || prev == '=' || prev == '!') {
                i += 1;
                continue;
            }
            let left = token_before(&chars, i);
            let right = token_after(&chars, i + 2);
            if is_float_literal(&left) || is_float_literal(&right) {
                return true;
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    false
}

fn token_before(chars: &[char], op_start: usize) -> String {
    let mut j = op_start;
    while j > 0 && chars[j - 1] == ' ' {
        j -= 1;
    }
    let end = j;
    while j > 0 && (chars[j - 1].is_alphanumeric() || matches!(chars[j - 1], '.' | '_')) {
        j -= 1;
    }
    chars[j..end].iter().collect()
}

fn token_after(chars: &[char], mut j: usize) -> String {
    while j < chars.len() && chars[j] == ' ' {
        j += 1;
    }
    let start = j;
    while j < chars.len() && (chars[j].is_alphanumeric() || matches!(chars[j], '.' | '_')) {
        j += 1;
    }
    chars[start..j].iter().collect()
}

/// `1024.0`, `0.5`, `1.` are float literals; `x.fract`, `self.jitter`
/// are not (they start with a letter).
fn is_float_literal(token: &str) -> bool {
    let mut saw_digit = false;
    let mut saw_dot = false;
    for (k, c) in token.chars().enumerate() {
        match c {
            '0'..='9' => saw_digit = true,
            '.' if k > 0 => saw_dot = true,
            '_' => {}
            _ => return false,
        }
    }
    saw_digit && saw_dot
}

/// Scans a whole file for `pub fn ... -> Cycles` signatures missing a
/// `#[must_use]` attribute. Returns hit line numbers (the `fn` line).
///
/// Signatures may span lines; attributes and doc comments may sit
/// between `#[must_use]` and the `fn`. Wrapped returns
/// (`Result<Cycles, _>`, `Option<Cycles>`) are exempt: the caller must
/// already look at them to get the value out.
pub fn must_use_cycles_hits(lines: &[Line]) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut i = 0usize;
    while i < lines.len() {
        let code = lines[i].code.trim();
        let is_pub_fn = !lines[i].in_test
            && (code.starts_with("pub fn ")
                || code.starts_with("pub(crate) fn ")
                || code.starts_with("pub(super) fn ")
                || code.contains(" pub fn ")
                || code.contains(" pub(crate) fn "));
        if !is_pub_fn {
            i += 1;
            continue;
        }
        // Accumulate the signature until the body opens or the item
        // ends (trait method declarations end with `;`).
        let mut sig = String::new();
        let mut j = i;
        while j < lines.len() {
            let piece = &lines[j].code;
            let stop = piece.find('{').or_else(|| piece.find(';'));
            match stop {
                Some(pos) => {
                    sig.push_str(&piece[..pos]);
                    break;
                }
                None => {
                    sig.push_str(piece);
                    sig.push(' ');
                    j += 1;
                }
            }
        }
        if returns_bare_cycles(&sig) && !has_must_use_above(lines, i) {
            hits.push(lines[i].number);
        }
        i = j.max(i) + 1;
    }
    hits
}

/// Does the signature's return type reduce to a bare `Cycles` path?
fn returns_bare_cycles(sig: &str) -> bool {
    let Some(pos) = sig.rfind("->") else {
        return false;
    };
    let ret = sig[pos + 2..].trim();
    let ret = ret.split(" where").next().unwrap_or(ret).trim();
    if ret.contains('<') {
        return false; // Result<Cycles, _> / Option<Cycles> are exempt
    }
    ret.rsplit("::").next().unwrap_or(ret).trim() == "Cycles"
}

/// Looks upward from the `fn` line across attributes/doc comments for
/// `#[must_use]`.
fn has_must_use_above(lines: &[Line], fn_idx: usize) -> bool {
    if lines[fn_idx].code.contains("#[must_use]") {
        return true;
    }
    let mut k = fn_idx;
    while k > 0 {
        k -= 1;
        let code = lines[k].code.trim();
        if code.contains("#[must_use]") {
            return true;
        }
        // Keep walking over other attributes, doc comments (already
        // stripped to empty code), and blank lines.
        if code.is_empty() || code.starts_with("#[") {
            continue;
        }
        return false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn word_boundaries() {
        assert!(has_word("use std::collections::HashMap;", "HashMap"));
        assert!(!has_word("struct MyHashMapLike;", "HashMap"));
    }

    #[test]
    fn float_eq_detection() {
        assert!(float_literal_comparison("if jitter == 0.0 {"));
        assert!(float_literal_comparison("v % 1024.0 == 0.0"));
        assert!(float_literal_comparison("x != 1.5"));
        assert!(!float_literal_comparison("if n == 0 {"));
        assert!(!float_literal_comparison("a <= 0.5"));
        assert!(!float_literal_comparison("a >= 0.5"));
        assert!(!float_literal_comparison("match x { _ => 0.0 }"));
    }

    #[test]
    fn must_use_positive_and_negative() {
        let src = "pub fn charge(&self) -> Cycles {\n}\n\
                   #[must_use]\npub fn ok(&self) -> Cycles {\n}\n\
                   pub fn wrapped(&self) -> Result<Cycles, E> {\n}\n\
                   pub fn multi(\n    a: u64,\n) -> Cycles {\n}\n";
        let lines = lex(src);
        let hits = must_use_cycles_hits(&lines);
        assert!(hits.contains(&1), "bare hit: {hits:?}");
        assert!(!hits.contains(&4), "must_use above suppresses");
        assert!(!hits.contains(&6), "wrapped return exempt");
        assert!(hits.contains(&8), "multi-line signature found: {hits:?}");
    }

    #[test]
    fn scopes() {
        assert!(Rule::Wallclock.applies_to("crates/sim/src/engine.rs"));
        assert!(!Rule::Wallclock.applies_to("crates/runner/src/pool.rs"));
        assert!(Rule::FloatEq.applies_to("crates/harness/src/plot.rs"));
        assert!(!Rule::FloatEq.applies_to("crates/sim/src/engine.rs"));
        assert!(Rule::Unwrap.applies_to("crates/sim/src/lock.rs"));
        assert!(Rule::Unwrap.applies_to("crates/proc/src/lib.rs"));
        assert!(Rule::Unwrap.applies_to("crates/farm/src/farm.rs"));
        // The race detector panics *by design* exactly once (the report
        // itself); everything on the way there must flow errors.
        assert!(Rule::Unwrap.applies_to("crates/race/src/detector.rs"));
        assert!(!Rule::Unwrap.applies_to("crates/harness/src/table.rs"));
        // The taint pass scopes by reachability, not by path.
        assert!(Rule::NondetTaint.applies_to("crates/harness/src/plan.rs"));
        assert!(Rule::NondetTaint.applies_to("crates/runner/src/pool.rs"));
        // The farm's simulation code also answers to the determinism
        // lints that scope by path prefix.
        assert!(Rule::Wallclock.applies_to("crates/farm/src/farm.rs"));
        assert!(Rule::HashmapIter.applies_to("crates/farm/src/hist.rs"));
        assert!(Rule::HostThreadSpawn.applies_to("crates/farm/src/farm.rs"));
        assert!(Rule::HostThreadSpawn.applies_to("crates/os/src/kernel.rs"));
        assert!(Rule::HostThreadSpawn.applies_to("crates/harness/src/plan.rs"));
        assert!(!Rule::HostThreadSpawn.applies_to("crates/sim/src/engine.rs"));
        assert!(!Rule::HostThreadSpawn.applies_to("crates/runner/src/pool.rs"));
    }

    #[test]
    fn host_thread_spawn_detection() {
        assert!(Rule::HostThreadSpawn.hits_line("std::thread::spawn(move || {})"));
        assert!(Rule::HostThreadSpawn.hits_line("thread::Builder::new()"));
        assert!(Rule::HostThreadSpawn.hits_line("std::thread::scope(|s| {})"));
        assert!(!Rule::HostThreadSpawn.hits_line("sim.spawn(\"p\", |s| {})"));
        assert!(!Rule::HostThreadSpawn.hits_line("thread::sleep(dur)"));
    }
}
