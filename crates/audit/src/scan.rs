//! The workspace scanner: walks the source tree, runs every rule over
//! the lexed view, and matches hits against `audit:allow` annotations.
//!
//! The annotation grammar is deliberately rigid:
//!
//! ```text
//! // audit:allow(<rule-slug>) <reason>
//! ```
//!
//! on the same line as the hit or the line directly above it. A bare
//! `audit:allow(rule)` with no reason does *not* suppress — the reason
//! is the audit trail. Annotations that suppress nothing are reported
//! as stale so they cannot rot in place.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Line};
use crate::rules::{must_use_cycles_hits, Rule};
use crate::taint;

/// One rule hit, suppressed or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line of the hit.
    pub line: usize,
    /// Rule slug.
    pub rule: &'static str,
    /// Human explanation of the rule.
    pub message: String,
    /// The offending code line (trimmed).
    pub code: String,
    /// `Some(reason)` when an `audit:allow` annotation covers the hit.
    pub allowed: Option<String>,
}

/// An `audit:allow` annotation parsed out of a comment.
#[derive(Debug, Clone)]
struct Allow {
    line: usize,
    rule: Rule,
    reason: String,
    used: std::cell::Cell<bool>,
}

/// The result of a full scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Every hit, allowed ones included, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Annotations that suppressed nothing: (file, line, slug).
    pub stale_allows: Vec<(String, usize, String)>,
}

impl Report {
    /// Hits not covered by an allow annotation.
    pub fn violations(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none()).collect()
    }

    /// Count of honoured allow annotations per rule slug.
    pub fn allows_by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut map = BTreeMap::new();
        for f in &self.findings {
            if f.allowed.is_some() {
                *map.entry(f.rule).or_insert(0) += 1;
            }
        }
        map
    }

    /// Renders the human report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let violations = self.violations();
        for f in &violations {
            out.push_str(&format!(
                "{}:{}: {}: {}\n    {}\n",
                f.file, f.line, f.rule, f.message, f.code
            ));
        }
        for (file, line, slug) in &self.stale_allows {
            out.push_str(&format!(
                "{file}:{line}: stale audit:allow({slug}) suppresses nothing (warning)\n"
            ));
        }
        out.push_str(&format!(
            "tnt-audit: {} file(s) scanned, {} violation(s), {} hit(s) allowed\n",
            self.files_scanned,
            violations.len(),
            self.findings.len() - violations.len()
        ));
        let allows = self.allows_by_rule();
        if !allows.is_empty() {
            let detail: Vec<String> = allows
                .iter()
                .map(|(slug, n)| format!("{slug}: {n}"))
                .collect();
            out.push_str(&format!("allowed by rule: {}\n", detail.join(", ")));
        }
        out
    }
}

/// Parses every `audit:allow(<slug>) <reason>` out of the lexed
/// comment text. A line may carry several annotations (a hit can trip
/// more than one rule); each reason runs up to the next annotation.
fn parse_allows(lines: &[Line]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for line in lines {
        let mut comment = line.comment.as_str();
        while let Some(pos) = comment.find("audit:allow(") {
            let rest = &comment[pos + "audit:allow(".len()..];
            let Some(close) = rest.find(')') else {
                break;
            };
            let slug = rest[..close].trim();
            let tail = &rest[close + 1..];
            let reason_end = tail.find("audit:allow(").unwrap_or(tail.len());
            let reason = tail[..reason_end].trim().to_string();
            if let Some(rule) = Rule::from_slug(slug) {
                allows.push(Allow {
                    line: line.number,
                    rule,
                    reason,
                    used: std::cell::Cell::new(false),
                });
            }
            comment = tail;
        }
    }
    allows
}

/// Finds the annotation covering a hit: same line first, then the line
/// directly above.
fn find_allow(allows: &[Allow], rule: Rule, line: usize) -> Option<&Allow> {
    allows
        .iter()
        .find(|a| a.rule == rule && a.line == line)
        .or_else(|| {
            allows
                .iter()
                .find(|a| a.rule == rule && a.line + 1 == line)
        })
}

/// Records one hit, consulting the file's allow annotations.
fn record(
    findings: &mut Vec<Finding>,
    allows: &[Allow],
    path: &str,
    rule: Rule,
    number: usize,
    code: &str,
    message: String,
) {
    let allowed = find_allow(allows, rule, number).and_then(|a| {
        if a.reason.is_empty() {
            // A reason-less allow is ignored: the reason is the
            // whole point of the annotation.
            None
        } else {
            a.used.set(true);
            Some(a.reason.clone())
        }
    });
    findings.push(Finding {
        file: path.to_string(),
        line: number,
        rule: rule.slug(),
        message,
        code: code.trim().to_string(),
        allowed,
    });
}

/// Scans a whole lexed corpus: the per-line and per-file rules on each
/// file, then the cross-file taint pass over everything at once.
fn scan_corpus(files: &[(String, Vec<Line>)]) -> Report {
    let allows_per: Vec<Vec<Allow>> = files.iter().map(|(_, l)| parse_allows(l)).collect();
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };

    for ((path, lines), allows) in files.iter().zip(&allows_per) {
        for line in lines {
            if line.in_test {
                continue;
            }
            for rule in Rule::ALL {
                if !rule.applies_to(path) {
                    continue;
                }
                if rule.hits_line(&line.code) {
                    record(
                        &mut report.findings,
                        allows,
                        path,
                        rule,
                        line.number,
                        &line.code,
                        rule.message().to_string(),
                    );
                }
            }
        }
        if Rule::MustUseCycles.applies_to(path) {
            for number in must_use_cycles_hits(lines) {
                let code = lines
                    .iter()
                    .find(|l| l.number == number)
                    .map(|l| l.code.clone())
                    .unwrap_or_default();
                record(
                    &mut report.findings,
                    allows,
                    path,
                    Rule::MustUseCycles,
                    number,
                    &code,
                    Rule::MustUseCycles.message().to_string(),
                );
            }
        }
    }

    for hit in taint::analyze(files) {
        let Some(idx) = files.iter().position(|(p, _)| *p == hit.file) else {
            continue;
        };
        if !Rule::NondetTaint.applies_to(&hit.file) {
            continue;
        }
        let message = format!(
            "{} ({} via {})",
            Rule::NondetTaint.message(),
            hit.source,
            hit.chain
        );
        record(
            &mut report.findings,
            &allows_per[idx],
            &hit.file,
            Rule::NondetTaint,
            hit.line,
            &hit.code,
            message,
        );
    }

    for ((path, _), allows) in files.iter().zip(&allows_per) {
        report.stale_allows.extend(
            allows
                .iter()
                .filter(|a| !a.used.get() && !a.reason.is_empty())
                .map(|a| (path.clone(), a.line, a.rule.slug().to_string())),
        );
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.stale_allows.sort();
    report
}

/// Scans one file's source text. `path` must be workspace-relative
/// with forward slashes (it drives rule scoping). The taint pass runs
/// with the file as its whole corpus, so cross-file reach is invisible
/// here — use [`scan_root`] for the real thing.
pub fn scan_source(path: &str, source: &str) -> (Vec<Finding>, Vec<(usize, String)>) {
    let report = scan_corpus(&[(path.to_string(), lex(source))]);
    let stale = report
        .stale_allows
        .into_iter()
        .map(|(_, line, slug)| (line, slug))
        .collect();
    (report.findings, stale)
}

/// Is this path part of the scanned surface? Vendored shims, build
/// output, fixtures and integration-test trees are out of scope.
fn scannable(rel: &str) -> bool {
    if !rel.ends_with(".rs") {
        return false;
    }
    let skip = ["vendor/", "target/", "/fixtures/", "/tests/"];
    !skip.iter().any(|s| rel.contains(s) || rel.starts_with(s.trim_start_matches('/')))
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == "vendor" || name == ".git" {
                continue;
            }
            walk(&path, files)?;
        } else {
            files.push(path);
        }
    }
    Ok(())
}

/// Scans the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`).
pub fn scan_root(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        walk(&crates, &mut files)?;
    }
    let src = root.join("src");
    if src.is_dir() {
        walk(&src, &mut files)?;
    }

    let mut rels: Vec<(String, PathBuf)> = files
        .into_iter()
        .filter_map(|p| {
            let rel = p
                .strip_prefix(root)
                .ok()?
                .to_string_lossy()
                .replace('\\', "/");
            scannable(&rel).then_some((rel, p))
        })
        .collect();
    // Deterministic report order regardless of directory-entry order.
    rels.sort();

    let mut corpus = Vec::new();
    for (rel, path) in rels {
        let source = fs::read_to_string(&path)?;
        corpus.push((rel, lex(&source)));
    }
    Ok(scan_corpus(&corpus))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_same_line_suppresses() {
        let src = "use std::collections::HashMap; // audit:allow(hashmap-iter) keyed lookup only\n";
        let (findings, stale) = scan_source("crates/net/src/net.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].allowed.is_some());
        assert!(stale.is_empty());
    }

    #[test]
    fn allow_line_above_suppresses() {
        let src = "// audit:allow(wallclock) progress meter only\nlet t = Instant::now();\n";
        let (findings, _) = scan_source("crates/harness/src/x.rs", src);
        let wall: Vec<_> = findings.iter().filter(|f| f.rule == "wallclock").collect();
        assert_eq!(wall.len(), 1);
        assert!(wall[0].allowed.is_some());
    }

    #[test]
    fn reasonless_allow_does_not_suppress() {
        let src = "let t = Instant::now(); // audit:allow(wallclock)\n";
        let (findings, _) = scan_source("crates/harness/src/x.rs", src);
        assert!(findings.iter().any(|f| f.rule == "wallclock" && f.allowed.is_none()));
    }

    #[test]
    fn two_allows_on_one_line_each_get_their_own_reason() {
        // One hit can trip two rules (e.g. wallclock + nondet-taint);
        // both annotations ride one comment, reasons split between them.
        let src = "// audit:allow(wallclock) progress only audit:allow(unwrap) checked above\n\
                   let t = Instant::now().elapsed().as_secs().checked_sub(1).unwrap();\n";
        let (findings, stale) = scan_source("crates/sim/src/x.rs", src);
        let wall = findings.iter().find(|f| f.rule == "wallclock").unwrap();
        assert_eq!(wall.allowed.as_deref(), Some("progress only"));
        let unw = findings.iter().find(|f| f.rule == "unwrap").unwrap();
        assert_eq!(unw.allowed.as_deref(), Some("checked above"));
        assert!(stale.is_empty());
    }

    #[test]
    fn stale_allow_reported() {
        let src = "// audit:allow(unwrap) nothing here needs it\nlet x = 1;\n";
        let (findings, stale) = scan_source("crates/sim/src/x.rs", src);
        assert!(findings.is_empty());
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let (findings, _) = scan_source("crates/sim/src/x.rs", src);
        assert!(findings.is_empty());
    }
}
