//! The `tnt-audit` binary.
//!
//! ```text
//! cargo run -p tnt-audit -- lint [--deny] [--root DIR]
//! ```
//!
//! `lint` prints every rule violation plus a summary of honoured
//! `audit:allow` annotations. With `--deny` any unsuppressed violation
//! (the CI gate) exits nonzero; without it the run is advisory.

use std::path::PathBuf;
use std::process::ExitCode;

use tnt_audit::scan_root;

fn usage() -> &'static str {
    "usage: tnt-audit lint [--deny] [--root DIR]\n\
     \n\
     lint     scan crates/*/src for determinism-rule violations\n\
     --deny   exit 1 on any violation not covered by audit:allow\n\
     --root   workspace root to scan (default: current directory)"
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    if cmd == "--help" || cmd == "-h" {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if cmd != "lint" {
        eprintln!("tnt-audit: unknown command {cmd:?}\n{}", usage());
        return ExitCode::from(2);
    }
    let mut deny = false;
    let mut root = PathBuf::from(".");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("tnt-audit: --root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("tnt-audit: unknown flag {other:?}\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let report = match scan_root(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("tnt-audit: scan failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    let violations = report.violations().len();
    if deny && violations > 0 {
        eprintln!("tnt-audit: --deny: {violations} violation(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
