#![warn(missing_docs)]

//! tnt-audit: the workspace invariant checker.
//!
//! The repo's headline guarantees — parallel `reproduce` output is
//! byte-identical to serial, and every simulated cycle is attributed —
//! are invariants of the *code*, not of any single test. This crate is
//! the static half of enforcing them: a hand-rolled, dependency-free
//! lint pass (`cargo run -p tnt-audit -- lint`) tuned to this
//! workspace's determinism rules. The dynamic half (lock-order graph,
//! lost-wakeup detection, host-guard checks) lives in `tnt-sim` behind
//! the `audit` feature, and the cycle-conservation audit in
//! `tnt-trace` / `reproduce --audit`.
//!
//! Lint hits are silenced only by an inline annotation that carries
//! its own justification:
//!
//! ```text
//! // audit:allow(<rule>) <reason>
//! ```
//!
//! The tool counts honoured annotations per rule and flags stale ones,
//! so the allow list is itself auditable.

pub mod lexer;
pub mod rules;
pub mod scan;
pub mod taint;

pub use rules::Rule;
pub use scan::{scan_root, scan_source, Finding, Report};
