//! Line-level Rust lexer for the lint pass.
//!
//! The rules in [`crate::rules`] are substring checks, so the lexer's
//! job is to make substring checks *sound*: it walks the source once,
//! blanking out comment bodies and string/char-literal contents, and
//! hands each rule a `code` view that contains only tokens the
//! compiler would see. `"HashMap"` inside a string, `.unwrap()` inside
//! a doc comment, and `Instant::now` inside a `/* ... */` block all
//! disappear before any rule runs.
//!
//! Comment *text* is kept per line (it is where `audit:allow`
//! annotations live), and a second pass marks lines inside
//! `#[cfg(test)] mod { ... }` regions so test code is exempt from the
//! production-only rules.

/// One source line after lexing.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The line with comments removed and string/char contents blanked
    /// (quotes are kept so tokens do not merge across the gap).
    pub code: String,
    /// Concatenated comment text appearing on this line.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]`-gated module or
    /// a `#[test]` function body.
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Normal,
    LineComment,
    /// Rust block comments nest; the payload is the depth.
    BlockComment(u32),
    Str,
    /// Raw string; payload is the number of `#` marks in the opener.
    RawStr(u32),
    CharLit,
}

/// Lexes a whole file into per-line code/comment views.
pub fn lex(source: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut number = 1usize;
    let mut state = State::Normal;

    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A line comment dies at the newline; everything else
            // (block comment, string) carries across.
            if state == State::LineComment {
                state = State::Normal;
            }
            lines.push(Line {
                number,
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            number += 1;
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        state = State::Str;
                        i += 1;
                    }
                    'r' | 'b' if starts_raw_string(&chars, i) => {
                        // r"..."/r#"..."#/br"..." — count the hashes.
                        let mut j = i + 1;
                        if chars.get(j) == Some(&'r') {
                            j += 1; // the `br` prefix
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        code.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1; // past the opening quote
                    }
                    'b' if next == Some('\'') => {
                        code.push('\'');
                        state = State::CharLit;
                        i += 2;
                    }
                    '\'' => {
                        if is_char_literal(&chars, i) {
                            code.push('\'');
                            state = State::CharLit;
                        } else {
                            // A lifetime: keep it, it is real code.
                            code.push('\'');
                        }
                        i += 1;
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => i += 2, // skip the escaped char, whatever it is
                '"' => {
                    code.push('"');
                    state = State::Normal;
                    i += 1;
                }
                _ => i += 1,
            },
            State::RawStr(hashes) => {
                if c == '"' && raw_string_closes(&chars, i, hashes) {
                    code.push('"');
                    state = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::CharLit => match c {
                '\\' => i += 2,
                '\'' => {
                    code.push('\'');
                    state = State::Normal;
                    i += 1;
                }
                _ => i += 1,
            },
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line {
            number,
            code,
            comment,
            in_test: false,
        });
    }
    mark_test_regions(&mut lines);
    lines
}

/// Does `chars[i..]` start a raw (or raw-byte) string literal?
fn starts_raw_string(chars: &[char], i: usize) -> bool {
    // Reject identifiers ending in r/b (e.g. `var"..."` cannot occur,
    // but `expr` followed by `"` can't either; the risk is `r` as the
    // tail of an identifier like `tracer"...`). Guard on the previous
    // char not being part of an identifier.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    if chars[i] == 'b' {
        if chars.get(j) != Some(&'r') {
            return false;
        }
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Does the `"` at `chars[i]` close a raw string opened with `hashes`
/// hash marks?
fn raw_string_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes `'a'` (char literal) from `'a` (lifetime) at the `'`
/// found at `chars[i]`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        // Escape sequence: always a char literal ('\n', '\'', '\\').
        Some('\\') => true,
        Some(c) if c.is_alphanumeric() || *c == '_' => {
            // 'x' is a literal iff the very next char closes it;
            // otherwise it is a lifetime ('static, 'a in generics).
            chars.get(i + 2) == Some(&'\'')
        }
        // Punctuation or space: '(' , ' ' — char literal.
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks lines inside `#[cfg(test)] mod ... { }` blocks and `#[test]`
/// function bodies, tracking brace depth over the *code* view (braces
/// in strings and comments are already gone).
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth = 0i64;
    // Depth at which each active test region started; a region ends
    // when the depth drops back to (or below) its start.
    let mut regions: Vec<i64> = Vec::new();
    let mut pending_attr = false;

    for line in lines.iter_mut() {
        let code = line.code.trim();
        if code.contains("#[cfg(test)]") || code.contains("#[test]") {
            pending_attr = true;
        }
        let opens_item = pending_attr
            && (code.starts_with("mod ")
                || code.contains(" mod ")
                || code.starts_with("fn ")
                || code.contains(" fn "));
        if !regions.is_empty() {
            line.in_test = true;
        }
        let mut region_opened = false;
        for c in line.code.chars() {
            match c {
                '{' => {
                    if opens_item && !region_opened {
                        regions.push(depth);
                        region_opened = true;
                        pending_attr = false;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    while let Some(&start) = regions.last() {
                        if depth <= start {
                            regions.pop();
                        } else {
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        if region_opened {
            line.in_test = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_comments_but_keeps_text() {
        let lines = lex("let x = 1; // HashMap here\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
    }

    #[test]
    fn strips_string_contents() {
        let c = code_of("let s = \"Instant::now inside\";\n");
        assert!(!c[0].contains("Instant::now"));
        assert!(c[0].contains('"'), "quotes kept as token boundary");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let c = code_of("let s = r#\"a \" .unwrap() \"# ; let y = 2;\n");
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("let y = 2"));
    }

    #[test]
    fn nested_block_comments() {
        let c = code_of("a /* outer /* inner */ still comment */ b\n");
        assert_eq!(c[0].replace(' ', ""), "ab");
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let c = code_of("fn f<'a>(x: &'a str) { let c = 'Z'; let d = '\\n'; }\n");
        assert!(c[0].contains("<'a>"));
        assert!(!c[0].contains('Z'), "char literal contents blanked: {}", c[0]);
    }

    #[test]
    fn cfg_test_mod_marks_region() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn prod2() {}\n";
        let lines = lex(src);
        assert!(!lines[0].in_test);
        assert!(lines[3].in_test, "body of test mod is test code");
        assert!(!lines[5].in_test, "region closed");
    }

    #[test]
    fn escaped_quote_in_string() {
        let c = code_of("let s = \"a\\\"b HashMap\"; let t = 1;\n");
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("let t = 1"));
    }
}
