//! Rule 7 (`nondet-taint`): the cross-file nondeterminism-taint pass.
//!
//! The per-line rules catch a nondeterministic *construct*; this pass
//! catches a nondeterministic *data flow*. Sinks are functions whose
//! bodies mention the structured-output types (`ExperimentRecord`,
//! `StatLine`) — the records the regression gate diffs byte-for-byte.
//! From every sink the pass walks the call graph downward (a
//! name-resolved, workspace-wide over-approximation) and flags any
//! reachable function that directly touches a nondeterminism source:
//! the host clock, an entropy-seeded RNG, a host thread id, or
//! hash-order iteration. A hit means "this nondeterminism can reach a
//! blessed statistic", which is exactly the taint the byte-identity
//! guarantee cannot tolerate.
//!
//! Resolution is by bare name, so the closure over-approximates on
//! common identifiers; a stoplist of ubiquitous std method names keeps
//! the graph from collapsing into "everything calls everything".
//! Suppression works like every other rule: an inline allow annotation
//! carrying the `nondet-taint` slug and a reason, on or above the
//! source line.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Line;

/// Tokens that mark a function as an experiment-output sink.
const SINK_TOKENS: [&str; 2] = ["ExperimentRecord", "StatLine"];

/// Method/function names too generic to resolve through: following
/// them would connect the whole workspace into one component.
const STOPLIST: [&str; 48] = [
    "new", "default", "clone", "cloned", "copied", "into", "from", "iter", "into_iter", "next",
    "len", "is_empty", "push", "pop", "insert", "remove", "get", "contains", "collect", "map",
    "filter", "filter_map", "flat_map", "flatten", "fold", "for_each", "to_string", "to_owned",
    "format", "write", "writeln", "unwrap", "unwrap_or", "expect", "min", "max", "abs", "lock",
    "join", "split", "trim", "parse", "find", "position", "any", "all", "sum", "count",
];

/// One nondeterminism source reachable from a sink.
#[derive(Debug, Clone)]
pub struct TaintHit {
    /// Workspace-relative path of the tainted function.
    pub file: String,
    /// 1-based line of the nondeterminism source.
    pub line: usize,
    /// The offending code line.
    pub code: String,
    /// What the line does (`host wall clock`, ...).
    pub source: &'static str,
    /// The call path from the sink to the tainted function.
    pub chain: String,
}

/// A function extracted from one lexed file.
struct FnInfo {
    name: String,
    file: usize,
    calls: BTreeSet<String>,
    is_sink: bool,
    /// `(line, code, kind)` for every direct nondeterminism source.
    sources: Vec<(usize, String, &'static str)>,
}

/// Classifies a code line as a nondeterminism source.
fn nondet_source(code: &str) -> Option<&'static str> {
    if code.contains("Instant::now") || code.contains("SystemTime::now") {
        return Some("host wall clock");
    }
    if code.contains("thread_rng") || code.contains("from_entropy") {
        return Some("entropy-seeded RNG");
    }
    if has_word(code, "ThreadId") {
        return Some("host thread id");
    }
    let iterates = [".iter()", ".keys()", ".values()", ".into_iter()", ".drain("]
        .iter()
        .any(|t| code.contains(t));
    if iterates && (has_word(code, "HashMap") || has_word(code, "HashSet")) {
        return Some("hash-order iteration");
    }
    None
}

/// Word-boundary containment (a local copy of the rules helper: the
/// two passes evolve independently).
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident_char(bytes[start - 1]);
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Pulls the declared name out of a `fn` line, if any.
fn fn_decl_name(code: &str) -> Option<String> {
    let mut from = 0usize;
    while let Some(pos) = code[from..].find("fn ") {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(code.as_bytes()[at - 1]);
        if !before_ok {
            from = at + 3;
            continue;
        }
        let rest = code[at + 3..].trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() && !name.as_bytes()[0].is_ascii_digit() {
            return Some(name);
        }
        from = at + 3;
    }
    None
}

/// Collects every `name(` call site on a code line (methods included,
/// macros and keywords excluded).
fn calls_on_line(code: &str, out: &mut BTreeSet<String>) {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i].is_ascii_alphabetic() || chars[i] == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let name: String = chars[start..i].iter().collect();
            let mut j = i;
            // Step over turbofish whitespace: `name (` still calls.
            while j < chars.len() && chars[j] == ' ' {
                j += 1;
            }
            let is_call = chars.get(j) == Some(&'(');
            let is_macro = chars.get(i) == Some(&'!');
            let is_decl = code[..start].trim_end().ends_with("fn");
            let is_keyword = matches!(
                name.as_str(),
                "if" | "while" | "for" | "match" | "return" | "fn" | "loop" | "in" | "let"
                    | "move" | "else" | "impl" | "where" | "pub" | "use" | "as" | "mut"
            );
            if is_call && !is_macro && !is_decl && !is_keyword {
                out.insert(name);
            }
            continue;
        }
        i += 1;
    }
}

/// Extracts every non-test function of one file, with its call set,
/// sink flag and direct nondeterminism sources. Brace-depth tracking
/// attributes each line to the innermost open function, so closure
/// bodies taint the function that spawns them — which is the right
/// semantics for `Sim::spawn(|s| ...)` workloads.
fn extract(file: usize, lines: &[Line], fns: &mut Vec<FnInfo>) {
    struct Open {
        idx: Option<usize>, // None for test functions (tracked, not recorded)
        depth: usize,
        entered: bool,
    }
    let mut stack: Vec<Open> = Vec::new();
    let mut depth = 0usize;
    for line in lines {
        let code = &line.code;
        if let Some(name) = fn_decl_name(code) {
            // A bodyless trait declaration never enters; replace it.
            if let Some(top) = stack.last() {
                if !top.entered && top.depth == depth {
                    stack.pop();
                }
            }
            let idx = if line.in_test {
                None
            } else {
                fns.push(FnInfo {
                    name,
                    file,
                    calls: BTreeSet::new(),
                    is_sink: false,
                    sources: Vec::new(),
                });
                Some(fns.len() - 1)
            };
            stack.push(Open {
                idx,
                depth,
                entered: false,
            });
        }
        if !line.in_test {
            if let Some(idx) = stack.last().and_then(|o| o.idx) {
                let info = &mut fns[idx];
                calls_on_line(code, &mut info.calls);
                if SINK_TOKENS.iter().any(|t| has_word(code, t)) {
                    info.is_sink = true;
                }
                if let Some(kind) = nondet_source(code) {
                    info.sources.push((line.number, code.trim().to_string(), kind));
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(top) = stack.last_mut() {
                        if !top.entered && depth == top.depth + 1 {
                            top.entered = true;
                        }
                    }
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while let Some(top) = stack.last() {
                        if top.entered && depth <= top.depth {
                            stack.pop();
                        } else {
                            break;
                        }
                    }
                }
                ';' => {
                    // `fn f(...) -> T;` — a declaration that will never
                    // open a body.
                    if let Some(top) = stack.last() {
                        if !top.entered && top.depth == depth {
                            stack.pop();
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Runs the taint pass over a set of lexed files (path, lines).
pub(crate) fn analyze(files: &[(String, Vec<Line>)]) -> Vec<TaintHit> {
    let mut fns: Vec<FnInfo> = Vec::new();
    for (idx, (_, lines)) in files.iter().enumerate() {
        extract(idx, lines, &mut fns);
    }
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(&f.name).or_default().push(i);
    }

    // BFS from every sink through name-resolved call edges; `parent`
    // remembers the discovery edge so hits can print their call path.
    let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in fns.iter().enumerate() {
        if f.is_sink {
            parent.insert(i, None);
            queue.push(i);
        }
    }
    while let Some(f) = queue.pop() {
        for call in &fns[f].calls {
            if STOPLIST.contains(&call.as_str()) {
                continue;
            }
            for &g in by_name.get(call.as_str()).into_iter().flatten() {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(g) {
                    e.insert(Some(f));
                    queue.push(g);
                }
            }
        }
    }

    let mut hits = Vec::new();
    for &i in parent.keys() {
        let info = &fns[i];
        if info.sources.is_empty() {
            continue;
        }
        // Reconstruct sink -> ... -> here for the report.
        let mut path = vec![info.name.as_str()];
        let mut at = i;
        while let Some(Some(p)) = parent.get(&at) {
            path.push(fns[*p].name.as_str());
            at = *p;
        }
        path.reverse();
        let chain = path.join(" -> ");
        for (line, code, source) in &info.sources {
            hits.push(TaintHit {
                file: files[info.file].0.clone(),
                line: *line,
                code: code.clone(),
                source,
                chain: chain.clone(),
            });
        }
    }
    hits.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lexed(files: &[(&str, &str)]) -> Vec<(String, Vec<Line>)> {
        files
            .iter()
            .map(|(p, s)| (p.to_string(), lex(s)))
            .collect()
    }

    #[test]
    fn source_classification() {
        assert_eq!(nondet_source("let t = Instant::now();"), Some("host wall clock"));
        assert_eq!(nondet_source("let r = thread_rng();"), Some("entropy-seeded RNG"));
        assert_eq!(
            nondet_source("for k in m.keys() {}"),
            None,
            "iteration alone is not a hit without the hash type on the line"
        );
        assert_eq!(
            nondet_source("let m: HashMap<u32, u32> = x; m.keys()"),
            Some("hash-order iteration")
        );
        assert_eq!(nondet_source("sim.now()"), None);
    }

    #[test]
    fn cross_file_taint_is_found_with_call_chain() {
        let files = lexed(&[
            (
                "crates/a/src/lib.rs",
                "fn emit() -> ExperimentRecord {\n    let v = measure();\n}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "fn measure() -> f64 {\n    let t = Instant::now();\n    0.0\n}\n",
            ),
        ]);
        let hits = analyze(&files);
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert_eq!(hits[0].file, "crates/b/src/lib.rs");
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[0].source, "host wall clock");
        assert_eq!(hits[0].chain, "emit -> measure");
    }

    #[test]
    fn unreachable_sources_are_clean() {
        let files = lexed(&[
            (
                "crates/a/src/lib.rs",
                "fn emit() -> ExperimentRecord {\n    tidy();\n}\nfn tidy() {}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "fn bench_only() {\n    let t = Instant::now();\n}\n",
            ),
        ]);
        assert!(analyze(&files).is_empty(), "no sink calls bench_only");
    }

    #[test]
    fn stoplist_names_do_not_connect_the_graph() {
        let files = lexed(&[
            (
                "crates/a/src/lib.rs",
                "fn emit() -> ExperimentRecord {\n    let x = thing.clone();\n}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "fn clone() {\n    let t = Instant::now();\n}\n",
            ),
        ]);
        assert!(analyze(&files).is_empty(), "clone is too generic to resolve");
    }

    #[test]
    fn test_functions_are_exempt() {
        let files = lexed(&[(
            "crates/a/src/lib.rs",
            "fn emit() -> ExperimentRecord {\n    helper();\n}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() {\n        let t = Instant::now();\n    }\n}\n",
        )]);
        assert!(analyze(&files).is_empty(), "test-only helpers never taint");
    }

    #[test]
    fn closure_bodies_taint_the_spawning_function() {
        let files = lexed(&[(
            "crates/a/src/lib.rs",
            "fn emit() -> StatLine {\n    run(move |s| {\n        let t = SystemTime::now();\n    });\n}\n",
        )]);
        let hits = analyze(&files);
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert_eq!(hits[0].line, 3);
        assert_eq!(hits[0].chain, "emit");
    }
}
