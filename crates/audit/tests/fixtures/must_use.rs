// Fixture for the must-use-cycles rule.

pub fn bare_charge() -> Cycles { // line 3: bare hit
    Cycles(1)
}

#[must_use]
pub fn annotated() -> Cycles { // attribute above: no hit
    Cycles(2)
}

// audit:allow(must-use-cycles) legacy API frozen until the next major rev
pub fn allowed_legacy() -> Cycles { // line 13: allowed hit
    Cycles(3)
}

pub fn wrapped() -> Result<Cycles, ()> { // wrapped return: exempt
    Ok(Cycles(4))
}

pub fn multi_line(
    a: u64,
    b: u64,
) -> Cycles { // signature starts at line 21: hit reported there
    Cycles(a + b)
}

fn private_fn() -> Cycles { // private: no hit
    Cycles(5)
}

// "pub fn fake() -> Cycles" in a string must not hit:
pub fn string_immunity() -> u64 {
    let s = "pub fn fake() -> Cycles {";
    s.len() as u64
}
