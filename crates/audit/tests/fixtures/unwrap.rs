// Fixture for the unwrap rule.

fn bare(r: Result<u32, ()>) -> u32 {
    r.unwrap() // line 4: bare hit
}

fn allowed(r: Result<u32, ()>) -> u32 {
    // audit:allow(unwrap) invariant: caller checked is_ok above
    r.unwrap() // line 9: allowed hit
}

fn reasonless(r: Result<u32, ()>) -> u32 {
    r.unwrap() // audit:allow(unwrap)
}

fn immune() {
    let s = ".unwrap() in a string";
    // .unwrap() in a comment must not hit.
    let _ = s;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let r: Result<u32, ()> = Ok(1);
        r.unwrap(); // in_test: no hit
    }
}
