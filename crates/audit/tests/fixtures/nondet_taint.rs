//! Fixture for the `nondet-taint` cross-file pass (run single-file
//! here: the sink and the tainted callee share this fixture).

fn emit_stats() -> ExperimentRecord {
    let sample = sample_latency();
    package(sample)
}

fn sample_latency() -> u64 {
    let t = std::time::Instant::now(); // line 10: tainted, bare hit
    t.elapsed().as_nanos() as u64
}

fn package(v: u64) -> u64 {
    // audit:allow(nondet-taint) fixture: reason carried on the line above the hit
    let seed = std::time::SystemTime::now(); // line 16: tainted, allowed
    v
}

fn bench_only() -> u64 {
    // Unreachable from the sink: no finding even though it reads the
    // host clock (the per-line wallclock rule still sees it).
    let t = std::time::Instant::now(); // line 23: not tainted
    0
}

fn innocent() {
    let s = "Instant::now() in a string never hits";
}
