// Fixture for the float-eq rule.

fn bare(x: f64) -> bool {
    x == 0.5 // line 4: bare hit
}

fn allowed(v: f64) -> bool {
    // audit:allow(float-eq) exact sentinel comparison by design
    v != 1024.0 // line 9: allowed hit
}

fn immune(a: f64, n: u64) -> bool {
    let s = "x == 0.5 in a string";
    // a == 0.25 in a comment must not hit.
    let ordered = a <= 0.5 && a >= 0.25; // ordering operators are fine
    let ints = n == 0; // integer comparison is fine
    let arm = match n {
        _ => 0.0, // fat arrow is not a comparison
    };
    let _ = (s, arm);
    ordered && ints
}
