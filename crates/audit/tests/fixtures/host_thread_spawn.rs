// Fixture for the host-thread-spawn rule.

fn bare() {
    let h = std::thread::spawn(|| {}); // line 4: bare hit
    let _ = h.join();
}

fn allowed() {
    // audit:allow(host-thread-spawn) watchdog thread, joined before any sim starts
    let b = std::thread::Builder::new(); // line 10: allowed hit
    let _ = b;
}

// thread::scope(...) in this comment must not hit.
fn immune() {
    let s = "thread::spawn in a string";
    let _ = s;
}
