// Fixture for the hashmap-iter rule. Never compiled; scanned by
// tests/lint_fixtures.rs with a fake workspace-relative path.

use std::collections::HashMap; // line 4: bare hit

// audit:allow(hashmap-iter) keyed lookup only, never iterated
use std::collections::HashSet; // line 7: allowed hit

// A HashMap mentioned in a comment must not hit.
fn immune() {
    let s = "HashMap in a string literal";
    let r = r#"HashSet in a raw string"#;
    let _ = (s, r);
}

struct MyHashMapLike; // line 15: word boundary, no hit
