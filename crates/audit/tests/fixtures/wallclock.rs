// Fixture for the wallclock rule.

fn bare() {
    let t = std::time::Instant::now(); // line 4: bare hit
    let _ = t;
}

fn allowed() {
    // audit:allow(wallclock) host-side progress meter, never simulated state
    let t = std::time::SystemTime::now(); // line 10: allowed hit
    let _ = t;
}

// Instant::now() in this comment must not hit.
fn immune() {
    let s = "Instant::now() in a string";
    let _ = s;
}
