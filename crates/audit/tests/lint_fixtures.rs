//! End-to-end lint-engine tests over the fixture files in
//! `tests/fixtures/`. Each fixture exercises one rule three ways:
//! a positive hit, an `audit:allow` suppression, and string/comment
//! immunity. The fixtures are scanned with fake workspace-relative
//! paths chosen to put them in each rule's scope; the real scanner
//! skips `/fixtures/` directories, so these files never pollute the
//! workspace lint.

use tnt_audit::scan_source;
use tnt_audit::Finding;

fn scan(fake_path: &str, fixture: &str) -> (Vec<Finding>, Vec<(usize, String)>) {
    scan_source(fake_path, fixture)
}

fn rule_findings<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn hashmap_iter_fixture() {
    let (findings, stale) = scan(
        "crates/fs/src/fixture.rs",
        include_str!("fixtures/hashmap_iter.rs"),
    );
    let hits = rule_findings(&findings, "hashmap-iter");
    assert_eq!(hits.len(), 2, "one bare + one allowed: {hits:#?}");
    assert_eq!(hits[0].line, 4);
    assert!(hits[0].allowed.is_none(), "line 4 is a violation");
    assert_eq!(hits[1].line, 7);
    assert_eq!(
        hits[1].allowed.as_deref(),
        Some("keyed lookup only, never iterated")
    );
    assert!(stale.is_empty(), "both annotations suppress something");
}

#[test]
fn wallclock_fixture() {
    let (findings, stale) = scan(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/wallclock.rs"),
    );
    let hits = rule_findings(&findings, "wallclock");
    assert_eq!(hits.len(), 2, "{hits:#?}");
    assert_eq!(hits[0].line, 4, "Instant::now violation");
    assert!(hits[0].allowed.is_none());
    assert_eq!(hits[1].line, 10, "SystemTime::now allowed");
    assert!(hits[1].allowed.is_some());
    assert!(stale.is_empty());
}

#[test]
fn wallclock_is_exempt_in_runner_pool() {
    let (findings, _) = scan(
        "crates/runner/src/pool.rs",
        include_str!("fixtures/wallclock.rs"),
    );
    assert!(
        rule_findings(&findings, "wallclock").is_empty(),
        "runner::pool is the one module allowed to read the host clock"
    );
}

#[test]
fn float_eq_fixture() {
    let (findings, stale) = scan(
        "crates/harness/src/fixture.rs",
        include_str!("fixtures/float_eq.rs"),
    );
    let hits = rule_findings(&findings, "float-eq");
    assert_eq!(hits.len(), 2, "{hits:#?}");
    assert_eq!(hits[0].line, 4);
    assert!(hits[0].allowed.is_none());
    assert_eq!(hits[1].line, 9);
    assert!(hits[1].allowed.is_some());
    assert!(stale.is_empty());
}

#[test]
fn float_eq_is_out_of_scope_in_simulator_code() {
    let (findings, _) = scan(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/float_eq.rs"),
    );
    assert!(rule_findings(&findings, "float-eq").is_empty());
}

#[test]
fn unwrap_fixture() {
    let (findings, stale) = scan(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/unwrap.rs"),
    );
    let hits = rule_findings(&findings, "unwrap");
    assert_eq!(hits.len(), 3, "{hits:#?}");
    assert_eq!((hits[0].line, hits[0].allowed.is_none()), (4, true));
    assert_eq!(hits[1].line, 9);
    assert_eq!(
        hits[1].allowed.as_deref(),
        Some("invariant: caller checked is_ok above")
    );
    assert_eq!(
        (hits[2].line, hits[2].allowed.is_none()),
        (13, true),
        "a reason-less audit:allow does not suppress"
    );
    assert!(stale.is_empty());
}

#[test]
fn must_use_fixture() {
    let (findings, stale) = scan(
        "crates/cpu/src/fixture.rs",
        include_str!("fixtures/must_use.rs"),
    );
    let hits = rule_findings(&findings, "must-use-cycles");
    let lines: Vec<usize> = hits.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![3, 13, 21], "{hits:#?}");
    assert!(hits[0].allowed.is_none(), "bare pub fn -> Cycles");
    assert!(hits[1].allowed.is_some(), "allow on the line above");
    assert!(
        hits[2].allowed.is_none(),
        "multi-line signature reported at its first line"
    );
    assert!(stale.is_empty());
}

#[test]
fn host_thread_spawn_fixture() {
    let (findings, stale) = scan(
        "crates/os/src/fixture.rs",
        include_str!("fixtures/host_thread_spawn.rs"),
    );
    let hits = rule_findings(&findings, "host-thread-spawn");
    assert_eq!(hits.len(), 2, "{hits:#?}");
    assert_eq!(hits[0].line, 4, "thread::spawn violation");
    assert!(hits[0].allowed.is_none());
    assert_eq!(hits[1].line, 10, "thread::Builder allowed");
    assert_eq!(
        hits[1].allowed.as_deref(),
        Some("watchdog thread, joined before any sim starts")
    );
    assert!(stale.is_empty());
}

#[test]
fn host_thread_spawn_is_exempt_in_engine_and_pool() {
    for path in ["crates/sim/src/engine.rs", "crates/runner/src/pool.rs"] {
        let (findings, _) = scan(path, include_str!("fixtures/host_thread_spawn.rs"));
        assert!(
            rule_findings(&findings, "host-thread-spawn").is_empty(),
            "{path} hosts real threads by design"
        );
    }
}

#[test]
fn fixtures_have_no_cross_rule_noise() {
    // Each fixture should only ever trip its own rule: strings and
    // comments carrying other rules' trigger text must stay inert.
    for (path, src, own) in [
        (
            "crates/sim/src/a.rs",
            include_str!("fixtures/wallclock.rs"),
            "wallclock",
        ),
        (
            "crates/sim/src/b.rs",
            include_str!("fixtures/unwrap.rs"),
            "unwrap",
        ),
        (
            "crates/harness/src/c.rs",
            include_str!("fixtures/float_eq.rs"),
            "float-eq",
        ),
    ] {
        let (findings, _) = scan(path, src);
        for f in &findings {
            assert_eq!(f.rule, own, "unexpected {} hit in {path}: {f:#?}", f.rule);
        }
    }
}

#[test]
fn nondet_taint_fixture() {
    let (findings, stale) = scan(
        "crates/runner/src/fixture.rs",
        include_str!("fixtures/nondet_taint.rs"),
    );
    let hits = rule_findings(&findings, "nondet-taint");
    assert_eq!(hits.len(), 2, "{hits:#?}");
    assert_eq!(hits[0].line, 10, "reachable clock read is a violation");
    assert!(hits[0].allowed.is_none());
    assert!(
        hits[0].message.contains("emit_stats -> sample_latency"),
        "message carries the call chain: {}",
        hits[0].message
    );
    assert_eq!(hits[1].line, 16, "allowed hit");
    assert!(hits[1].allowed.is_some());
    assert!(
        !hits.iter().any(|h| h.line == 23),
        "bench_only is unreachable from the sink"
    );
    assert!(stale.is_empty());
}

#[test]
fn stale_allow_is_reported_with_its_slug() {
    let src = "// audit:allow(hashmap-iter) nothing below uses one\nfn empty() {}\n";
    let (findings, stale) = scan("crates/fs/src/x.rs", src);
    assert!(findings.is_empty());
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0], (1, "hashmap-iter".to_string()));
}
