//! The shard planner: longest-processing-time (LPT) assignment.
//!
//! Experiments publish cost hints (anything monotone in expected run
//! time — simulated cycles, iteration counts). The planner sorts the
//! shards by descending cost and greedily assigns each to the
//! least-loaded worker, the classic LPT heuristic (≤ 4/3 of optimal
//! makespan). The pool uses the result only as the *initial* deal —
//! work stealing corrects any misestimate at run time — but starting
//! balanced matters when one shard (Figure 1's big-N context-switch
//! legs) dwarfs the rest.

/// Assigns job indices to `workers` queues by descending cost hint.
///
/// Each returned queue is in descending-cost order, so workers start
/// with their heaviest shard and thieves (who take from the back) get
/// the lightest — the cheapest work to move.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn assign_lpt(costs: &[u64], workers: usize) -> Vec<Vec<usize>> {
    assert!(workers > 0, "cannot plan for zero workers");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    // Stable descending sort: ties keep submission order, which keeps
    // the plan deterministic for equal-cost shards.
    order.sort_by(|&a, &b| costs[b].cmp(&costs[a]).then(a.cmp(&b)));
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut loads: Vec<u64> = vec![0; workers];
    for idx in order {
        // Least-loaded worker, lowest worker id on ties.
        let w = (0..workers).min_by_key(|&w| (loads[w], w)).unwrap();
        loads[w] += costs[idx].max(1); // zero-cost shards still occupy a slot
        queues[w].push(idx);
    }
    queues
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        let costs: Vec<u64> = (0..37).map(|i| (i * 7 + 3) % 11).collect();
        let queues = assign_lpt(&costs, 4);
        let mut seen: Vec<usize> = queues.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn balances_a_skewed_load() {
        // One giant shard plus many small ones: the giant must sit
        // alone on its worker, the small ones spread over the rest.
        let mut costs = vec![1000u64];
        costs.extend(std::iter::repeat_n(10, 30));
        let queues = assign_lpt(&costs, 4);
        let giant_queue = queues.iter().find(|q| q.contains(&0)).unwrap();
        assert_eq!(giant_queue.len(), 1, "giant shard runs alone: {queues:?}");
        let loads: Vec<u64> = queues
            .iter()
            .map(|q| q.iter().map(|&i| costs[i]).sum())
            .collect();
        let small_max = loads.iter().filter(|&&l| l < 1000).max().unwrap();
        let small_min = loads.iter().filter(|&&l| l < 1000).min().unwrap();
        assert!(small_max - small_min <= 10, "balanced: {loads:?}");
    }

    #[test]
    fn deterministic_for_equal_costs() {
        let costs = vec![5u64; 12];
        assert_eq!(assign_lpt(&costs, 3), assign_lpt(&costs, 3));
        // Ties deal in submission order.
        assert_eq!(assign_lpt(&costs, 3)[0], vec![0, 3, 6, 9]);
    }

    #[test]
    fn more_workers_than_jobs() {
        let queues = assign_lpt(&[7, 3], 5);
        assert_eq!(queues.iter().map(Vec::len).sum::<usize>(), 2);
    }

    #[test]
    #[should_panic(expected = "zero workers")]
    fn zero_workers_panics() {
        assign_lpt(&[1], 0);
    }
}
