//! A minimal JSON codec for the results store.
//!
//! The workspace builds offline against vendored path crates only, so
//! there is no serde; this module implements exactly the subset the
//! store needs. Object key order is preserved (insertion order) and
//! numbers are written with Rust's shortest round-tripping `f64`
//! formatting, so serialising the same data always yields the same
//! bytes — the property the byte-identical determinism tests check.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on write and read.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(v) => {
                // JSON has no NaN/Infinity; the store never produces
                // them, but don't emit unparseable text if it does.
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{}{pad}", if i == 0 { "\n" } else { ",\n" });
                    item.write(out, depth + 1);
                }
                let _ = write!(out, "\n{close}]");
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    let _ = write!(out, "{}{pad}", if i == 0 { "\n" } else { ",\n" });
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                let _ = write!(out, "\n{close}}}");
            }
        }
    }

    /// Parses a JSON document (the subset this module writes, plus
    /// arbitrary whitespace).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            byte as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad keyword at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (bytes are valid UTF-8:
                // the input is a &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_store_shaped_document() {
        let doc = Value::Obj(vec![
            ("version".into(), Value::Num(1.0)),
            ("scale".into(), Value::Str("quick".into())),
            (
                "records".into(),
                Value::Arr(vec![Value::Obj(vec![
                    ("id".into(), Value::Str("t2".into())),
                    ("mean".into(), Value::Num(2.31)),
                    ("empty".into(), Value::Arr(vec![])),
                    ("none".into(), Value::Null),
                    ("ok".into(), Value::Bool(true)),
                ])]),
            ),
        ]);
        let text = doc.render();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Deterministic bytes: render(parse(render(x))) == render(x).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [
            2.31,
            0.000123,
            1.0 / 3.0,
            123456789.123456,
            -55.5,
            1e-300,
            0.0,
        ] {
            let text = Value::Num(v).render();
            assert_eq!(Value::parse(&text).unwrap().as_f64().unwrap(), v, "{text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nwith \"quotes\" and \\slashes\\ and µs";
        let text = Value::Str(s.into()).render();
        assert_eq!(Value::parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{\"a\": }").is_err());
        assert!(Value::parse("[1, 2").is_err());
        assert!(Value::parse("{} trailing").is_err());
        assert!(Value::parse("").is_err());
    }

    #[test]
    fn get_looks_up_members() {
        let doc = Value::parse("{\"a\": 1, \"b\": \"x\"}").unwrap();
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x"));
        assert!(doc.get("c").is_none());
    }
}
