//! Structured per-experiment results.
//!
//! Rendered tables and figures are for humans; an [`ExperimentRecord`]
//! is the same result in machine-readable form — one [`StatLine`] per
//! OS personality (or per curve) with the mean, the dispersion the
//! paper insists on reporting, and the normalised ratio. The store
//! persists these as `results/baselines.json` and the regression gate
//! diffs fresh runs against them.

/// One statistic line: an OS personality (or series) of one experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct StatLine {
    /// Row or curve label as rendered ("Linux", "FreeBSD libc", ...).
    pub label: String,
    /// Mean over the seeded runs (unit is the experiment's own).
    pub mean: f64,
    /// Sample standard deviation as a percentage of the mean — the
    /// paper's "Std Dev" column.
    pub sd_pct: f64,
    /// Normalised ratio in (0, 1]: best system = 1.00, as in the
    /// paper's "Norm." column. For figures, the ratio of series means.
    pub norm: f64,
}

/// The structured result of one experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment id ("t2", "f9", "x1", ...).
    pub id: String,
    /// Paper title of the table/figure.
    pub title: String,
    /// Seeded runs per statistic.
    pub runs: u64,
    /// One line per OS personality / curve. Empty for configuration
    /// or prose-only experiments (still gated on presence).
    pub stats: Vec<StatLine>,
    /// Wall-clock compute time of this experiment's shards, in
    /// milliseconds, summed over shards (so it is comparable between
    /// serial and parallel runs). **Not** serialised into baselines —
    /// timing varies run to run, statistics must not.
    pub wall_ms: f64,
}

impl ExperimentRecord {
    /// A record with no statistics yet (filled by extraction helpers).
    pub fn new(id: impl Into<String>, title: impl Into<String>, runs: u64) -> ExperimentRecord {
        ExperimentRecord {
            id: id.into(),
            title: title.into(),
            runs,
            stats: Vec::new(),
            wall_ms: 0.0,
        }
    }

    /// Adds a statistic line (builder style).
    pub fn with_stats(mut self, stats: Vec<StatLine>) -> ExperimentRecord {
        self.stats = stats;
        self
    }

    /// The stat line for `label`, if present.
    pub fn stat(&self, label: &str) -> Option<&StatLine> {
        self.stats.iter().find(|s| s.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let rec = ExperimentRecord::new("t2", "TABLE 2. System Call", 20).with_stats(vec![
            StatLine {
                label: "Linux".into(),
                mean: 2.31,
                sd_pct: 0.5,
                norm: 1.0,
            },
            StatLine {
                label: "Solaris 2.4".into(),
                mean: 3.52,
                sd_pct: 0.8,
                norm: 0.66,
            },
        ]);
        assert_eq!(rec.stat("Linux").unwrap().mean, 2.31);
        assert!(rec.stat("Plan9").is_none());
        assert_eq!(rec.runs, 20);
    }
}
