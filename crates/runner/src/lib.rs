#![warn(missing_docs)]

//! Parallel experiment execution and the golden-baseline results store.
//!
//! The harness describes each experiment as a set of independent jobs
//! (shards of the experiment-id × OS-leg × seeded-run matrix). This
//! crate runs those jobs across host cores and hands the results back
//! **in submission order**, so rendered output is byte-identical to a
//! serial run no matter how the jobs were scheduled:
//!
//! - [`pool`] — a work-stealing thread pool ([`run_ordered`]): each
//!   worker owns a deque, idle workers steal from the back of busy
//!   ones, and every job is panic-isolated ([`JobPanic`]) so one bad
//!   experiment cannot take down the run.
//! - [`plan`] — the shard planner ([`assign_lpt`]): longest-processing-
//!   time assignment from per-job cost hints, which seeds the deques so
//!   stealing starts from a balanced state.
//! - [`record`] — [`ExperimentRecord`]/[`StatLine`], the structured
//!   per-experiment statistics (per-OS mean, σ, normalised ratio).
//! - [`store`] — [`BaselineStore`]: serialises records to
//!   `results/baselines.json` (`reproduce bless`) and diffs a fresh run
//!   against them with a tolerance gate (`reproduce check`).
//! - [`json`] — the minimal JSON codec backing the store (the
//!   workspace builds offline; there is no serde).

pub mod json;
pub mod plan;
pub mod pool;
pub mod record;
pub mod store;

pub use plan::assign_lpt;
pub use pool::{run_ordered, Job, JobOutcome, JobPanic};
pub use record::{ExperimentRecord, StatLine};
pub use store::{BaselineStore, Drift};
