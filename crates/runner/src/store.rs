//! The golden-baseline results store and regression gate.
//!
//! `reproduce bless` serialises the current run's [`ExperimentRecord`]s
//! to `results/baselines.json`; `reproduce check` reruns the suite and
//! diffs every statistic against the blessed file, failing loudly on:
//!
//! - a blessed experiment missing from the fresh run,
//! - an experiment in the fresh run that was never blessed,
//! - a stat line (OS personality / curve) appearing or disappearing,
//! - a mean drifting further than the tolerance (relative %),
//! - σ or the normalised ratio drifting further than the tolerance
//!   (absolute percentage points),
//! - the blessed file having been produced at a different scale.
//!
//! Serialisation is deterministic (see [`crate::json`]): blessing the
//! same results twice yields byte-identical files, which is what lets
//! the determinism tests compare `--jobs 1` and `--jobs 8` output as
//! raw bytes. Wall-clock time is deliberately **not** stored.

use crate::json::Value;
use crate::record::{ExperimentRecord, StatLine};

/// Format version of `baselines.json`.
pub const STORE_VERSION: f64 = 1.0;

/// Absolute slack allowed when the blessed mean is exactly zero, where a
/// relative (percent) tolerance is meaningless. Sized to forgive float
/// noise only: every stat is rounded to a few decimals before blessing,
/// so any real drift from zero clears this by orders of magnitude.
pub const ZERO_MEAN_ABS_EPS: f64 = 1e-9;

/// A set of blessed (or freshly measured) experiment records.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineStore {
    /// Scale the records were produced at ("quick", "full", "smoke").
    pub scale: String,
    /// One record per experiment, in canonical suite order.
    pub records: Vec<ExperimentRecord>,
}

/// One detected difference between a blessed store and a fresh run.
#[derive(Clone, Debug, PartialEq)]
pub enum Drift {
    /// The blessed and fresh stores were produced at different scales.
    ScaleMismatch {
        /// Scale recorded in the blessed file.
        blessed: String,
        /// Scale of the fresh run.
        measured: String,
    },
    /// A blessed experiment did not appear in the fresh run.
    MissingExperiment(String),
    /// The fresh run produced an experiment that was never blessed.
    UnexpectedExperiment(String),
    /// A blessed stat line did not appear in the fresh experiment.
    MissingStat {
        /// Experiment id.
        id: String,
        /// Stat label.
        label: String,
    },
    /// The fresh experiment grew a stat line that was never blessed.
    UnexpectedStat {
        /// Experiment id.
        id: String,
        /// Stat label.
        label: String,
    },
    /// A statistic moved further than the tolerance.
    StatDrift {
        /// Experiment id.
        id: String,
        /// Stat label.
        label: String,
        /// Which statistic ("mean", "sd_pct", "norm").
        what: &'static str,
        /// Blessed value.
        blessed: f64,
        /// Fresh value.
        measured: f64,
        /// Drift as a percentage (relative for means, absolute
        /// percentage points otherwise).
        drift_pct: f64,
    },
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Drift::ScaleMismatch { blessed, measured } => write!(
                f,
                "scale mismatch: baselines were blessed at --{blessed}, this run is --{measured}"
            ),
            Drift::MissingExperiment(id) => {
                write!(f, "{id}: blessed experiment missing from this run")
            }
            Drift::UnexpectedExperiment(id) => {
                write!(f, "{id}: experiment not present in blessed baselines")
            }
            Drift::MissingStat { id, label } => {
                write!(f, "{id}/{label}: blessed stat line missing from this run")
            }
            Drift::UnexpectedStat { id, label } => {
                write!(f, "{id}/{label}: stat line not present in blessed baselines")
            }
            Drift::StatDrift {
                id,
                label,
                what,
                blessed,
                measured,
                drift_pct,
            } => write!(
                f,
                "{id}/{label}: {what} drifted {drift_pct:.2}% (blessed {blessed:.6}, measured {measured:.6})"
            ),
        }
    }
}

impl BaselineStore {
    /// Serialises to deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let records = self
            .records
            .iter()
            .map(|r| {
                let stats = r
                    .stats
                    .iter()
                    .map(|s| {
                        Value::Obj(vec![
                            ("label".into(), Value::Str(s.label.clone())),
                            ("mean".into(), Value::Num(s.mean)),
                            ("sd_pct".into(), Value::Num(s.sd_pct)),
                            ("norm".into(), Value::Num(s.norm)),
                        ])
                    })
                    .collect();
                Value::Obj(vec![
                    ("id".into(), Value::Str(r.id.clone())),
                    ("title".into(), Value::Str(r.title.clone())),
                    ("runs".into(), Value::Num(r.runs as f64)),
                    ("stats".into(), Value::Arr(stats)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("version".into(), Value::Num(STORE_VERSION)),
            ("scale".into(), Value::Str(self.scale.clone())),
            ("records".into(), Value::Arr(records)),
        ])
        .render()
    }

    /// Parses a store previously written by [`BaselineStore::to_json`].
    pub fn from_json(text: &str) -> Result<BaselineStore, String> {
        let doc = Value::parse(text)?;
        let version = doc
            .get("version")
            .and_then(Value::as_f64)
            .ok_or("missing version")?;
        if version != STORE_VERSION {
            return Err(format!("unsupported baselines version {version}"));
        }
        let scale = doc
            .get("scale")
            .and_then(Value::as_str)
            .ok_or("missing scale")?
            .to_string();
        let mut records = Vec::new();
        for rec in doc
            .get("records")
            .and_then(Value::as_arr)
            .ok_or("missing records")?
        {
            let id = rec
                .get("id")
                .and_then(Value::as_str)
                .ok_or("record missing id")?;
            let title = rec
                .get("title")
                .and_then(Value::as_str)
                .ok_or("record missing title")?;
            let runs = rec
                .get("runs")
                .and_then(Value::as_f64)
                .ok_or("record missing runs")? as u64;
            let mut stats = Vec::new();
            for s in rec
                .get("stats")
                .and_then(Value::as_arr)
                .ok_or("record missing stats")?
            {
                stats.push(StatLine {
                    label: s
                        .get("label")
                        .and_then(Value::as_str)
                        .ok_or("stat missing label")?
                        .to_string(),
                    mean: s
                        .get("mean")
                        .and_then(Value::as_f64)
                        .ok_or("stat missing mean")?,
                    sd_pct: s
                        .get("sd_pct")
                        .and_then(Value::as_f64)
                        .ok_or("stat missing sd_pct")?,
                    norm: s
                        .get("norm")
                        .and_then(Value::as_f64)
                        .ok_or("stat missing norm")?,
                });
            }
            records.push(ExperimentRecord::new(id, title, runs).with_stats(stats));
        }
        Ok(BaselineStore { scale, records })
    }

    /// Diffs a fresh run (`current`) against this blessed store.
    ///
    /// `tolerance_pct` bounds the allowed drift: relative percent for
    /// means, absolute percentage points for σ and the normalised
    /// ratio (both already live on a percent-like scale). Returns every
    /// drift found, empty when the gate passes.
    pub fn compare(&self, current: &BaselineStore, tolerance_pct: f64) -> Vec<Drift> {
        let mut drifts = Vec::new();
        if self.scale != current.scale {
            drifts.push(Drift::ScaleMismatch {
                blessed: self.scale.clone(),
                measured: current.scale.clone(),
            });
        }
        for blessed in &self.records {
            let Some(fresh) = current.records.iter().find(|r| r.id == blessed.id) else {
                drifts.push(Drift::MissingExperiment(blessed.id.clone()));
                continue;
            };
            for bs in &blessed.stats {
                let Some(fs) = fresh.stat(&bs.label) else {
                    drifts.push(Drift::MissingStat {
                        id: blessed.id.clone(),
                        label: bs.label.clone(),
                    });
                    continue;
                };
                // Mean: relative drift. Percent-of-zero is undefined, so
                // a zero blessed mean compares the raw absolute diff
                // against an explicit absolute epsilon instead — any
                // measurable departure from an exactly-zero baseline is a
                // drift, regardless of the percent tolerance.
                if bs.mean.abs() > f64::EPSILON {
                    let mean_drift = (fs.mean - bs.mean).abs() / bs.mean.abs() * 100.0;
                    if mean_drift > tolerance_pct {
                        drifts.push(Drift::StatDrift {
                            id: blessed.id.clone(),
                            label: bs.label.clone(),
                            what: "mean",
                            blessed: bs.mean,
                            measured: fs.mean,
                            drift_pct: mean_drift,
                        });
                    }
                } else if (fs.mean - bs.mean).abs() > ZERO_MEAN_ABS_EPS {
                    drifts.push(Drift::StatDrift {
                        id: blessed.id.clone(),
                        label: bs.label.clone(),
                        what: "mean",
                        blessed: bs.mean,
                        measured: fs.mean,
                        drift_pct: f64::INFINITY,
                    });
                }
                let sd_drift = (fs.sd_pct - bs.sd_pct).abs();
                if sd_drift > tolerance_pct {
                    drifts.push(Drift::StatDrift {
                        id: blessed.id.clone(),
                        label: bs.label.clone(),
                        what: "sd_pct",
                        blessed: bs.sd_pct,
                        measured: fs.sd_pct,
                        drift_pct: sd_drift,
                    });
                }
                let norm_drift = (fs.norm - bs.norm).abs() * 100.0;
                if norm_drift > tolerance_pct {
                    drifts.push(Drift::StatDrift {
                        id: blessed.id.clone(),
                        label: bs.label.clone(),
                        what: "norm",
                        blessed: bs.norm,
                        measured: fs.norm,
                        drift_pct: norm_drift,
                    });
                }
            }
            for fs in &fresh.stats {
                if blessed.stat(&fs.label).is_none() {
                    drifts.push(Drift::UnexpectedStat {
                        id: blessed.id.clone(),
                        label: fs.label.clone(),
                    });
                }
            }
        }
        for fresh in &current.records {
            if !self.records.iter().any(|r| r.id == fresh.id) {
                drifts.push(Drift::UnexpectedExperiment(fresh.id.clone()));
            }
        }
        drifts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> BaselineStore {
        BaselineStore {
            scale: "quick".into(),
            records: vec![
                ExperimentRecord::new("t2", "TABLE 2. System Call", 5).with_stats(vec![
                    StatLine {
                        label: "Linux".into(),
                        mean: 2.31,
                        sd_pct: 0.4,
                        norm: 1.0,
                    },
                    StatLine {
                        label: "Solaris 2.4".into(),
                        mean: 3.52,
                        sd_pct: 0.9,
                        norm: 0.66,
                    },
                ]),
                ExperimentRecord::new("t1", "TABLE 1. Disk Partitioning", 5),
            ],
        }
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let s = store();
        let text = s.to_json();
        let back = BaselineStore::from_json(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn identical_stores_pass_at_zero_tolerance() {
        let s = store();
        assert!(s.compare(&store(), 0.0).is_empty());
    }

    #[test]
    fn perturbed_mean_fails_the_gate() {
        let blessed = store();
        let mut fresh = store();
        fresh.records[0].stats[0].mean *= 1.10; // +10%
        let drifts = blessed.compare(&fresh, 5.0);
        assert_eq!(drifts.len(), 1);
        match &drifts[0] {
            Drift::StatDrift {
                id, label, what, ..
            } => {
                assert_eq!(id, "t2");
                assert_eq!(label, "Linux");
                assert_eq!(*what, "mean");
            }
            other => panic!("unexpected drift {other:?}"),
        }
        // Within tolerance it passes.
        assert!(blessed.compare(&fresh, 15.0).is_empty());
    }

    #[test]
    fn missing_and_extra_experiments_are_loud() {
        let blessed = store();
        let mut fresh = store();
        fresh.records.remove(1); // drop t1
        fresh
            .records
            .push(ExperimentRecord::new("t9", "TABLE 9. Invented", 5));
        let drifts = blessed.compare(&fresh, 100.0);
        assert!(drifts.contains(&Drift::MissingExperiment("t1".into())));
        assert!(drifts.contains(&Drift::UnexpectedExperiment("t9".into())));
    }

    #[test]
    fn missing_and_extra_stat_lines_are_loud() {
        let blessed = store();
        let mut fresh = store();
        fresh.records[0].stats[1].label = "FreeBSD".into();
        let drifts = blessed.compare(&fresh, 100.0);
        assert!(drifts.contains(&Drift::MissingStat {
            id: "t2".into(),
            label: "Solaris 2.4".into()
        }));
        assert!(drifts.contains(&Drift::UnexpectedStat {
            id: "t2".into(),
            label: "FreeBSD".into()
        }));
    }

    #[test]
    fn zero_mean_baseline_catches_real_drift() {
        // A stat blessed at exactly 0.0 that measures 0.01 has drifted,
        // full stop — no percent tolerance can express "percent of
        // zero". The old ×100-vs-percent fallback let this through at
        // any tolerance above 1.0.
        let mut blessed = store();
        blessed.records[0].stats[0].mean = 0.0;
        let mut fresh = blessed.clone();
        fresh.records[0].stats[0].mean = 0.01;
        let drifts = blessed.compare(&fresh, 5.0);
        assert_eq!(drifts.len(), 1, "expected one mean drift, got {drifts:?}");
        assert!(matches!(
            &drifts[0],
            Drift::StatDrift { what: "mean", measured, .. } if (*measured - 0.01).abs() < 1e-12
        ));
    }

    #[test]
    fn zero_mean_baseline_forgives_float_noise() {
        // Conversely, sub-epsilon noise on a zero mean is not a drift
        // even at zero tolerance; the old fallback flagged it.
        let mut blessed = store();
        blessed.records[0].stats[0].mean = 0.0;
        let mut fresh = blessed.clone();
        fresh.records[0].stats[0].mean = 1e-12;
        assert!(blessed.compare(&fresh, 0.0).is_empty());
    }

    #[test]
    fn scale_mismatch_is_a_drift() {
        let blessed = store();
        let mut fresh = store();
        fresh.scale = "full".into();
        let drifts = blessed.compare(&fresh, 100.0);
        assert!(matches!(drifts[0], Drift::ScaleMismatch { .. }));
    }

    #[test]
    fn drift_display_is_readable() {
        let d = Drift::StatDrift {
            id: "t2".into(),
            label: "Linux".into(),
            what: "mean",
            blessed: 2.31,
            measured: 2.54,
            drift_pct: 9.96,
        };
        let s = d.to_string();
        assert!(s.contains("t2/Linux"), "{s}");
        assert!(s.contains("9.96%"), "{s}");
    }
}
