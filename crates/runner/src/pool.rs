//! The work-stealing pool.
//!
//! All jobs are known up front (the experiment matrix is static), so
//! the pool is a fork-join executor: the planner deals the jobs into
//! per-worker deques, each worker pops from the front of its own deque
//! and steals from the back of the others when it runs dry, and the
//! whole set is done when every deque is empty. Because no job ever
//! enqueues another, "every deque empty" is a monotone condition and
//! workers can exit without a coordination round.
//!
//! Results land in per-job slots indexed by submission order, so the
//! returned vector is deterministic regardless of which worker ran
//! what — the ordered merge the harness's byte-identical guarantee
//! rests on.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::plan::assign_lpt;

/// A job's boxed closure: runs on an arbitrary pool thread exactly once.
pub type Work<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// One unit of work: a cost hint for the planner plus the closure.
pub struct Job<T> {
    /// Relative cost hint (any unit; only ordering matters).
    pub cost: u64,
    /// The work.
    pub work: Work<T>,
}

impl<T> Job<T> {
    /// Convenience constructor.
    pub fn new(cost: u64, work: impl FnOnce() -> T + Send + 'static) -> Job<T> {
        Job {
            cost,
            work: Box::new(work),
        }
    }
}

/// A job that panicked instead of returning.
#[derive(Clone, Debug)]
pub struct JobPanic {
    /// Index of the job in the submitted set.
    pub index: usize,
    /// The panic payload, stringified.
    pub message: String,
}

/// The outcome of one job: its value (or isolated panic) and how long
/// it ran on its worker.
pub struct JobOutcome<T> {
    /// The job's return value, or the captured panic.
    pub result: Result<T, JobPanic>,
    /// Wall-clock execution time of this job alone.
    pub elapsed: Duration,
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn run_job<T>(index: usize, work: Work<T>) -> JobOutcome<T> {
    // audit:allow(nondet-taint) feeds wall_ms only, which bless never stores and check never diffs
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(work)).map_err(|payload| JobPanic {
        index,
        message: panic_message(payload),
    });
    JobOutcome {
        result,
        elapsed: start.elapsed(),
    }
}

/// Runs every job and returns their outcomes **in submission order**.
///
/// `workers <= 1` (or a single job) runs inline on the calling thread,
/// in order — the serial reference path. More workers run the jobs on
/// `min(workers, jobs)` threads with work stealing; the merge back into
/// submission order makes the two paths indistinguishable from the
/// outside except for wall-clock time.
pub fn run_ordered<T: Send + 'static>(jobs: Vec<Job<T>>, workers: usize) -> Vec<JobOutcome<T>> {
    let n_jobs = jobs.len();
    if workers <= 1 || n_jobs <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| run_job(i, job.work))
            .collect();
    }
    let n_workers = workers.min(n_jobs);
    let costs: Vec<u64> = jobs.iter().map(|j| j.cost).collect();
    let assignment = assign_lpt(&costs, n_workers);

    // Job closures parked in per-index slots; a worker claims one by
    // taking it out of its slot, so each runs exactly once.
    let slots: Vec<Mutex<Option<Work<T>>>> = jobs
        .into_iter()
        .map(|j| Mutex::new(Some(j.work)))
        .collect();
    let deques: Vec<Mutex<VecDeque<usize>>> = assignment
        .into_iter()
        .map(|q| Mutex::new(q.into_iter().collect()))
        .collect();
    let results: Vec<Mutex<Option<JobOutcome<T>>>> =
        (0..n_jobs).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..n_workers {
            let slots = &slots;
            let deques = &deques;
            let results = &results;
            scope.spawn(move || loop {
                // Own deque first (front = planner order), then steal
                // from the back of the busiest-looking victim.
                let mut next = deques[me].lock().unwrap().pop_front();
                if next.is_none() {
                    for offset in 1..n_workers {
                        let victim = (me + offset) % n_workers;
                        if let Some(idx) = deques[victim].lock().unwrap().pop_back() {
                            next = Some(idx);
                            break;
                        }
                    }
                }
                // No job set grows after submission, so an empty sweep
                // means this worker is done for good.
                let Some(idx) = next else { return };
                let work = slots[idx]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("job claimed twice");
                let outcome = run_job(idx, work);
                *results[idx].lock().unwrap() = Some(outcome);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker exited with unfinished job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn results_come_back_in_submission_order() {
        // Costs are deliberately inverted so the planner reorders
        // execution; the merge must undo that.
        let jobs: Vec<Job<usize>> = (0..50)
            .map(|i| Job::new(50 - i as u64, move || i * 3))
            .collect();
        for workers in [1, 2, 8] {
            let out = run_ordered(
                jobs.iter()
                    .enumerate()
                    .map(|(i, j)| Job::new(j.cost, move || i * 3))
                    .collect(),
                workers,
            );
            let values: Vec<usize> = out.into_iter().map(|o| o.result.unwrap()).collect();
            assert_eq!(values, (0..50).map(|i| i * 3).collect::<Vec<_>>());
        }
        drop(jobs);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job<()>> = (0..200)
            .map(|_| {
                let c = counter.clone();
                Job::new(1, move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        run_ordered(jobs, 8);
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn work_spreads_across_threads() {
        // With more workers than needed the jobs still all run; on a
        // multi-core host they run on several distinct threads. (On a
        // single-core host the scheduler may serialise them — only
        // assert the set is non-empty and the results correct.)
        let jobs: Vec<Job<std::thread::ThreadId>> = (0..64)
            .map(|_| {
                Job::new(1, || {
                    std::thread::sleep(Duration::from_millis(1));
                    std::thread::current().id()
                })
            })
            .collect();
        let out = run_ordered(jobs, 4);
        let tids: HashSet<_> = out.into_iter().map(|o| o.result.unwrap()).collect();
        assert!(!tids.is_empty());
    }

    #[test]
    fn a_panicking_job_is_isolated() {
        let jobs: Vec<Job<u32>> = (0..10)
            .map(|i| {
                Job::new(1, move || {
                    if i == 4 {
                        panic!("job four exploded");
                    }
                    i
                })
            })
            .collect();
        let out = run_ordered(jobs, 4);
        for (i, o) in out.iter().enumerate() {
            match &o.result {
                Ok(v) => {
                    assert_ne!(i, 4);
                    assert_eq!(*v, i as u32);
                }
                Err(p) => {
                    assert_eq!(i, 4);
                    assert_eq!(p.index, 4);
                    assert!(p.message.contains("job four exploded"));
                }
            }
        }
    }

    #[test]
    fn serial_path_runs_inline() {
        let tid = std::thread::current().id();
        let out = run_ordered(vec![Job::new(1, move || std::thread::current().id())], 8);
        assert_eq!(out[0].result.as_ref().unwrap(), &tid);
    }

    #[test]
    fn elapsed_is_recorded() {
        let out = run_ordered(
            vec![Job::new(1, || std::thread::sleep(Duration::from_millis(5)))],
            1,
        );
        assert!(out[0].elapsed >= Duration::from_millis(4));
    }
}
