#![warn(missing_docs)]

//! NFS over SunRPC/UDP — the Section 10 experiments.
//!
//! The client ([`NfsClient`]) implements the same `Filesystem` trait as
//! the local filesystems, so the Modified Andrew Benchmark runs over NFS
//! unchanged. The server ([`serve`]) is an `nfsd` process on a second
//! simulated machine, reached across the 10 Mb/s Ethernet model.
//!
//! The two mechanisms behind Tables 6 and 7:
//!
//! - server write policy: the SunOS 4.1.4 server commits every WRITE RPC
//!   to disk (per the NFS spec); the Linux 1.2.8 server answers
//!   asynchronously from its cache — which is why every client is faster
//!   against the Linux server;
//! - client transfer size: the Linux client's 1 KB WRITEs are merely
//!   chatty against an async server but catastrophic against a sync one
//!   (eight disk commits where FreeBSD pays one).
//!
//! RPC messages are genuinely XDR-encoded into the UDP payloads, so wire
//! times come from real message sizes.

mod client;
mod proto;
mod server;
mod xdr;

pub use client::{NfsClient, NfsClientParams};
pub use proto::{Fh, NfsCall, NfsReply, RpcReply, RpcRequest, WireAttr, NFS_PORT};
pub use server::{serve, NfsServer, NfsServerConfig, ServerStats};
pub use xdr::{XdrDecoder, XdrEncoder};
