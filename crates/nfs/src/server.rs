//! The NFS server daemon.
//!
//! One `nfsd` process per server machine: it receives RPCs from the UDP
//! model, executes them against the server's local filesystem, and
//! replies. The single policy difference that drives Table 6 vs Table 7
//! is `sync_writes`: the SunOS 4.1.4 server commits every WRITE RPC to
//! disk before replying (as the NFS specification requires), while the
//! Linux 1.2.8 server answers from its buffer cache and trusts its
//! asynchronous update policy.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::proto::{Fh, NfsCall, NfsReply, RpcReply, RpcRequest, WireAttr, NFS_PORT};
use tnt_net::{Addr, Net, UdpSocket};
use tnt_os::{Errno, Filesystem, KEnv, Kernel, OpenFlags, Os, SysResult};
use tnt_sim::trace::Class;
use tnt_sim::Cycles;

/// Server behaviour knobs.
#[derive(Clone, Copy, Debug)]
pub struct NfsServerConfig {
    /// Commit every WRITE RPC to disk before replying (the NFS spec; the
    /// Linux 1.2.8 server ignores it).
    pub sync_writes: bool,
    /// Server CPU per RPC (decode, dispatch, encode).
    pub per_op_cy: u64,
}

impl NfsServerConfig {
    /// The configuration for a server running `os`.
    pub fn for_os(os: Os) -> NfsServerConfig {
        match os {
            Os::Linux => NfsServerConfig {
                sync_writes: false,
                per_op_cy: 18_000,
            },
            Os::SunOs => NfsServerConfig {
                sync_writes: true,
                per_op_cy: 14_000,
            },
            Os::FreeBsd => NfsServerConfig {
                sync_writes: true,
                per_op_cy: 15_000,
            },
            Os::Solaris => NfsServerConfig {
                sync_writes: true,
                per_op_cy: 20_000,
            },
        }
    }
}

/// Statistics the server accumulates, for tests and reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// RPCs served.
    pub rpcs: u64,
    /// WRITE RPCs served.
    pub writes: u64,
    /// READ RPCs served.
    pub reads: u64,
    /// Retransmissions answered from the duplicate-request cache.
    pub dup_hits: u64,
}

/// Entries kept in the duplicate-request cache.
const DUP_CACHE_ENTRIES: usize = 64;

/// A cached reply for the duplicate-request cache: the encoded bytes and
/// their datagram padding.
type CachedReply = (Vec<u8>, u64);

/// Duplicate-request cache key: (client address, transaction id).
type DupKey = (tnt_net::Addr, u32);

struct ServerState {
    /// fh -> absolute path on the local filesystem.
    paths: BTreeMap<Fh, String>,
    stats: ServerStats,
    /// Replays of retransmitted non-idempotent calls (REMOVE, CREATE)
    /// answer from here instead of re-executing — the classic NFS fix.
    dup_cache: Vec<(DupKey, CachedReply)>,
}

/// A running NFS server (the handle; the daemon is a simulated process).
pub struct NfsServer {
    addr: Addr,
    state: Arc<Mutex<ServerState>>,
}

impl NfsServer {
    /// The address clients mount.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ServerStats {
        self.state.lock().stats
    }
}

/// Starts an NFS server on `kernel`'s machine (`host` on `net`), serving
/// its mounted root filesystem.
pub fn serve(
    net: &Net,
    kernel: &Kernel,
    host: u32,
    fs: Arc<dyn Filesystem>,
    config: NfsServerConfig,
) -> SysResult<NfsServer> {
    let sock = UdpSocket::bind(net, kernel, host, NFS_PORT)?;
    let addr = sock.addr();
    let state = Arc::new(Mutex::new(ServerState {
        paths: BTreeMap::new(),
        stats: ServerStats::default(),
        dup_cache: Vec::new(),
    }));
    let st2 = state.clone();
    let env = kernel.env().clone();
    kernel.spawn_user("nfsd", move |_p| {
        server_loop(&env, &sock, &fs, &st2, config);
    });
    Ok(NfsServer { addr, state })
}

fn server_loop(
    env: &KEnv,
    sock: &UdpSocket,
    fs: &Arc<dyn Filesystem>,
    state: &Arc<Mutex<ServerState>>,
    config: NfsServerConfig,
) {
    // Register the export root.
    let root = match fs.lookup(env, "/") {
        Ok(v) => v,
        Err(_) => return,
    };
    state.lock().paths.insert(root, String::new());
    loop {
        let pkt = match sock.recv() {
            Ok(Some(pkt)) => pkt,
            Ok(None) | Err(_) => return,
        };
        // Fault plane: a dropped request vanishes before any processing
        // (an overflowed socket buffer on a busy nfsd). The client's
        // retransmission — same xid — will be served normally.
        if env.sim.faults().rpc_request_drop() {
            continue;
        }
        // Everything between receiving a request and posting its reply is
        // server-side RPC time: decode/dispatch CPU plus the filesystem
        // work (which opens its own nested spans — disk phases and all).
        let _srv = env.sim.span(Class::RpcServer);
        {
            let _s = env.sim.span(Class::ProtoCpu);
            env.sim.charge(Cycles(config.per_op_cy));
        }
        let req = match RpcRequest::decode(&pkt.data) {
            Ok(r) => r,
            Err(_) => continue, // Malformed datagram: drop, like rpcd.
        };
        let shutdown = matches!(req.call, NfsCall::Shutdown);
        // A retransmitted request replays its original reply: without
        // this, a lost REMOVE or MKDIR reply would make the client's
        // retry fail (ENOENT/EEXIST) — the classic NFS duplicate-request
        // problem.
        let replay = {
            let st = state.lock();
            st.dup_cache
                .iter()
                .find(|(k, _)| *k == (pkt.from, req.xid))
                .map(|(_, v)| v.clone())
        };
        if let Some((bytes, pad)) = replay {
            state.lock().stats.dup_hits += 1;
            if !env.sim.faults().rpc_reply_drop() {
                let _ = sock.send_padded(pkt.from, bytes, pad);
            }
            continue;
        }
        {
            let mut st = state.lock();
            st.stats.rpcs += 1;
            match req.call {
                NfsCall::Read { .. } => st.stats.reads += 1,
                NfsCall::Write { .. } => st.stats.writes += 1,
                _ => {}
            }
        }
        let (reply, pad) = handle(env, fs, state, root, &req.call, config);
        let bytes = RpcReply {
            xid: req.xid,
            reply,
        }
        .encode();
        {
            let mut st = state.lock();
            if st.dup_cache.len() == DUP_CACHE_ENTRIES {
                st.dup_cache.remove(0);
            }
            st.dup_cache
                .push(((pkt.from, req.xid), (bytes.clone(), pad)));
        }
        // Fault plane: a dropped reply was still *executed* and cached —
        // the retransmitted request must hit the duplicate-request cache
        // above, or non-idempotent calls (REMOVE, CREATE) would fail on
        // replay. This is the case the cache exists for.
        if !env.sim.faults().rpc_reply_drop() {
            let _ = sock.send_padded(pkt.from, bytes, pad);
        }
        if shutdown {
            return;
        }
    }
}

fn wire_attr(a: tnt_os::FileAttr) -> WireAttr {
    WireAttr {
        size: a.size,
        is_dir: a.is_dir,
        nlink: a.nlink,
    }
}

fn child_path(state: &Mutex<ServerState>, dir: Fh, name: &str) -> SysResult<String> {
    let st = state.lock();
    let parent = st.paths.get(&dir).ok_or(Errno::EBADF)?;
    Ok(format!("{parent}/{name}"))
}

fn handle(
    env: &KEnv,
    fs: &Arc<dyn Filesystem>,
    state: &Arc<Mutex<ServerState>>,
    root: Fh,
    call: &NfsCall,
    config: NfsServerConfig,
) -> (NfsReply, u64) {
    let result: SysResult<(NfsReply, u64)> = (|| match call {
        NfsCall::Null | NfsCall::Shutdown => Ok((NfsReply::Ok, 0)),
        NfsCall::Getattr { fh } => {
            let attr = fs.getattr(env, *fh)?;
            Ok((NfsReply::Attr(wire_attr(attr)), 0))
        }
        NfsCall::Lookup { dir, name } => {
            // The mount convention: LOOKUP(0, "") answers the root handle.
            if *dir == 0 && name.is_empty() {
                let attr = fs.getattr(env, root)?;
                return Ok((
                    NfsReply::Handle {
                        fh: root,
                        attr: wire_attr(attr),
                    },
                    0,
                ));
            }
            let path = child_path(state, *dir, name)?;
            let fh = fs.lookup(env, &path)?;
            let attr = fs.getattr(env, fh)?;
            state.lock().paths.insert(fh, path);
            Ok((
                NfsReply::Handle {
                    fh,
                    attr: wire_attr(attr),
                },
                0,
            ))
        }
        NfsCall::Read { fh, off, len } => {
            let n = fs.read(env, *fh, *off, *len)?;
            Ok((NfsReply::Data { len: n }, n))
        }
        NfsCall::Write { fh, off, len } => {
            let n = fs.write(env, *fh, *off, *len)?;
            if config.sync_writes {
                fs.fsync(env, *fh)?;
            }
            Ok((NfsReply::Wrote { len: n }, 0))
        }
        NfsCall::Create {
            dir,
            name,
            exclusive,
        } => {
            let path = child_path(state, *dir, name)?;
            let flags = OpenFlags {
                exclusive: *exclusive,
                ..OpenFlags::creat()
            };
            let fh = fs.open(env, &path, flags)?;
            let attr = fs.getattr(env, fh)?;
            state.lock().paths.insert(fh, path);
            Ok((
                NfsReply::Handle {
                    fh,
                    attr: wire_attr(attr),
                },
                0,
            ))
        }
        NfsCall::Remove { dir, name } => {
            let path = child_path(state, *dir, name)?;
            fs.unlink(env, &path)?;
            Ok((NfsReply::Ok, 0))
        }
        NfsCall::Mkdir { dir, name } => {
            let path = child_path(state, *dir, name)?;
            fs.mkdir(env, &path)?;
            let fh = fs.lookup(env, &path)?;
            let attr = fs.getattr(env, fh)?;
            state.lock().paths.insert(fh, path);
            Ok((
                NfsReply::Handle {
                    fh,
                    attr: wire_attr(attr),
                },
                0,
            ))
        }
        NfsCall::Rmdir { dir, name } => {
            let path = child_path(state, *dir, name)?;
            fs.rmdir(env, &path)?;
            Ok((NfsReply::Ok, 0))
        }
        NfsCall::Rename {
            from_dir,
            from_name,
            to_dir,
            to_name,
        } => {
            let from = child_path(state, *from_dir, from_name)?;
            let to = child_path(state, *to_dir, to_name)?;
            fs.rename(env, &from, &to)?;
            // The moved object's handle (if cached) now maps to `to`.
            let mut st = state.lock();
            let moved: Vec<Fh> = st
                .paths
                .iter()
                .filter(|(_, p)| **p == from)
                .map(|(fh, _)| *fh)
                .collect();
            for fh in moved {
                st.paths.insert(fh, to.clone());
            }
            Ok((NfsReply::Ok, 0))
        }
        NfsCall::Readdir { dir } => {
            let path = state.lock().paths.get(dir).cloned().ok_or(Errno::EBADF)?;
            let names = fs.readdir(env, if path.is_empty() { "/" } else { &path })?;
            Ok((NfsReply::Names(names), 0))
        }
    })();
    match result {
        Ok(ok) => ok,
        Err(e) => (NfsReply::Error(e), 0),
    }
}
