//! NFSv2-style RPC message definitions and their XDR codecs.
//!
//! The procedures cover exactly what the Modified Andrew Benchmark needs:
//! name lookup, attributes, reads, writes, create/remove, directory
//! create/remove/list. File handles are the server filesystem's vnode
//! ids, as real NFSv2 handles essentially were.

use crate::xdr::{XdrDecoder, XdrEncoder};
use tnt_os::{Errno, SysResult};

/// The well-known NFS port.
pub const NFS_PORT: u16 = 2049;

/// An NFS file handle (the server's vnode id).
pub type Fh = u64;

/// Wire form of file attributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireAttr {
    /// File size in bytes.
    pub size: u64,
    /// Whether the object is a directory.
    pub is_dir: bool,
    /// Link count.
    pub nlink: u32,
}

/// An NFS call.
#[derive(Clone, Debug, PartialEq)]
pub enum NfsCall {
    /// No-op (RPC ping).
    Null,
    /// Fetch attributes.
    Getattr {
        /// Object handle.
        fh: Fh,
    },
    /// Look a name up in a directory.
    Lookup {
        /// Directory handle.
        dir: Fh,
        /// Component name.
        name: String,
    },
    /// Read `len` bytes at `off`.
    Read {
        /// File handle.
        fh: Fh,
        /// Byte offset.
        off: u64,
        /// Byte count.
        len: u64,
    },
    /// Write `len` bytes at `off` (payload travels as datagram padding).
    Write {
        /// File handle.
        fh: Fh,
        /// Byte offset.
        off: u64,
        /// Byte count.
        len: u64,
    },
    /// Create (or truncate) a file in a directory.
    Create {
        /// Directory handle.
        dir: Fh,
        /// New file name.
        name: String,
        /// Fail if it exists.
        exclusive: bool,
    },
    /// Remove a file.
    Remove {
        /// Directory handle.
        dir: Fh,
        /// File name.
        name: String,
    },
    /// Create a directory.
    Mkdir {
        /// Parent directory handle.
        dir: Fh,
        /// New directory name.
        name: String,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Parent directory handle.
        dir: Fh,
        /// Directory name.
        name: String,
    },
    /// List a directory.
    Readdir {
        /// Directory handle.
        dir: Fh,
    },
    /// Rename within the export.
    Rename {
        /// Source directory handle.
        from_dir: Fh,
        /// Source name.
        from_name: String,
        /// Target directory handle.
        to_dir: Fh,
        /// Target name.
        to_name: String,
    },
    /// Tear the server down (testing convenience, not a real NFS proc).
    Shutdown,
}

/// An NFS reply.
#[derive(Clone, Debug, PartialEq)]
pub enum NfsReply {
    /// The call failed with this error.
    Error(Errno),
    /// Attributes.
    Attr(WireAttr),
    /// A handle plus its attributes (LOOKUP/CREATE/MKDIR).
    Handle {
        /// The object's handle.
        fh: Fh,
        /// Its attributes.
        attr: WireAttr,
    },
    /// Read result: `len` payload bytes follow as datagram padding.
    Data {
        /// Bytes read.
        len: u64,
    },
    /// Write result.
    Wrote {
        /// Bytes written.
        len: u64,
    },
    /// Directory listing.
    Names(Vec<String>),
    /// Success with no body (REMOVE/RMDIR/SHUTDOWN/NULL).
    Ok,
}

/// A request with its transaction id.
#[derive(Clone, Debug, PartialEq)]
pub struct RpcRequest {
    /// Transaction id, echoed in the reply.
    pub xid: u32,
    /// The call.
    pub call: NfsCall,
}

/// A reply with its transaction id.
#[derive(Clone, Debug, PartialEq)]
pub struct RpcReply {
    /// Matches the request.
    pub xid: u32,
    /// The result.
    pub reply: NfsReply,
}

fn errno_code(e: Errno) -> u32 {
    match e {
        Errno::EBADF => 9,
        Errno::EPIPE => 32,
        Errno::ENOENT => 2,
        Errno::EEXIST => 17,
        Errno::ENOTDIR => 20,
        Errno::EISDIR => 21,
        Errno::ENOTEMPTY => 66,
        Errno::ENOSPC => 28,
        Errno::EINVAL => 22,
        Errno::ENOSYS => 38,
        Errno::ECONNREFUSED => 111,
        Errno::EADDRINUSE => 98,
        Errno::ENOTCONN => 107,
        Errno::EMSGSIZE => 90,
        Errno::EAGAIN => 11,
        Errno::EIO => 5,
        Errno::ETIMEDOUT => 110,
    }
}

fn code_errno(c: u32) -> Errno {
    match c {
        9 => Errno::EBADF,
        32 => Errno::EPIPE,
        2 => Errno::ENOENT,
        17 => Errno::EEXIST,
        20 => Errno::ENOTDIR,
        21 => Errno::EISDIR,
        66 => Errno::ENOTEMPTY,
        28 => Errno::ENOSPC,
        38 => Errno::ENOSYS,
        111 => Errno::ECONNREFUSED,
        98 => Errno::EADDRINUSE,
        107 => Errno::ENOTCONN,
        90 => Errno::EMSGSIZE,
        11 => Errno::EAGAIN,
        5 => Errno::EIO,
        110 => Errno::ETIMEDOUT,
        _ => Errno::EINVAL,
    }
}

fn encode_attr(e: &mut XdrEncoder, a: &WireAttr) {
    e.u64(a.size).boolean(a.is_dir).u32(a.nlink);
}

fn decode_attr(d: &mut XdrDecoder<'_>) -> SysResult<WireAttr> {
    Ok(WireAttr {
        size: d.u64()?,
        is_dir: d.boolean()?,
        nlink: d.u32()?,
    })
}

impl RpcRequest {
    /// Serialises the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = XdrEncoder::new();
        e.u32(self.xid);
        match &self.call {
            NfsCall::Null => {
                e.u32(0);
            }
            NfsCall::Getattr { fh } => {
                e.u32(1).u64(*fh);
            }
            NfsCall::Lookup { dir, name } => {
                e.u32(2).u64(*dir).string(name);
            }
            NfsCall::Read { fh, off, len } => {
                e.u32(3).u64(*fh).u64(*off).u64(*len);
            }
            NfsCall::Write { fh, off, len } => {
                e.u32(4).u64(*fh).u64(*off).u64(*len);
            }
            NfsCall::Create {
                dir,
                name,
                exclusive,
            } => {
                e.u32(5).u64(*dir).string(name).boolean(*exclusive);
            }
            NfsCall::Remove { dir, name } => {
                e.u32(6).u64(*dir).string(name);
            }
            NfsCall::Mkdir { dir, name } => {
                e.u32(7).u64(*dir).string(name);
            }
            NfsCall::Rmdir { dir, name } => {
                e.u32(8).u64(*dir).string(name);
            }
            NfsCall::Readdir { dir } => {
                e.u32(9).u64(*dir);
            }
            NfsCall::Rename {
                from_dir,
                from_name,
                to_dir,
                to_name,
            } => {
                e.u32(10)
                    .u64(*from_dir)
                    .string(from_name)
                    .u64(*to_dir)
                    .string(to_name);
            }
            NfsCall::Shutdown => {
                e.u32(99);
            }
        }
        e.into_bytes()
    }

    /// Deserialises a request.
    pub fn decode(bytes: &[u8]) -> SysResult<RpcRequest> {
        let mut d = XdrDecoder::new(bytes);
        let xid = d.u32()?;
        let proc_no = d.u32()?;
        let call = match proc_no {
            0 => NfsCall::Null,
            1 => NfsCall::Getattr { fh: d.u64()? },
            2 => NfsCall::Lookup {
                dir: d.u64()?,
                name: d.string()?,
            },
            3 => NfsCall::Read {
                fh: d.u64()?,
                off: d.u64()?,
                len: d.u64()?,
            },
            4 => NfsCall::Write {
                fh: d.u64()?,
                off: d.u64()?,
                len: d.u64()?,
            },
            5 => NfsCall::Create {
                dir: d.u64()?,
                name: d.string()?,
                exclusive: d.boolean()?,
            },
            6 => NfsCall::Remove {
                dir: d.u64()?,
                name: d.string()?,
            },
            7 => NfsCall::Mkdir {
                dir: d.u64()?,
                name: d.string()?,
            },
            8 => NfsCall::Rmdir {
                dir: d.u64()?,
                name: d.string()?,
            },
            9 => NfsCall::Readdir { dir: d.u64()? },
            10 => NfsCall::Rename {
                from_dir: d.u64()?,
                from_name: d.string()?,
                to_dir: d.u64()?,
                to_name: d.string()?,
            },
            99 => NfsCall::Shutdown,
            _ => return Err(Errno::EINVAL),
        };
        Ok(RpcRequest { xid, call })
    }
}

impl RpcReply {
    /// Serialises the reply.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = XdrEncoder::new();
        e.u32(self.xid);
        match &self.reply {
            NfsReply::Error(err) => {
                e.u32(0).u32(errno_code(*err));
            }
            NfsReply::Attr(a) => {
                e.u32(1);
                encode_attr(&mut e, a);
            }
            NfsReply::Handle { fh, attr } => {
                e.u32(2).u64(*fh);
                encode_attr(&mut e, attr);
            }
            NfsReply::Data { len } => {
                e.u32(3).u64(*len);
            }
            NfsReply::Wrote { len } => {
                e.u32(4).u64(*len);
            }
            NfsReply::Names(names) => {
                e.u32(5).u32(names.len() as u32);
                for n in names {
                    e.string(n);
                }
            }
            NfsReply::Ok => {
                e.u32(6);
            }
        }
        e.into_bytes()
    }

    /// Deserialises a reply.
    pub fn decode(bytes: &[u8]) -> SysResult<RpcReply> {
        let mut d = XdrDecoder::new(bytes);
        let xid = d.u32()?;
        let tag = d.u32()?;
        let reply = match tag {
            0 => NfsReply::Error(code_errno(d.u32()?)),
            1 => NfsReply::Attr(decode_attr(&mut d)?),
            2 => NfsReply::Handle {
                fh: d.u64()?,
                attr: decode_attr(&mut d)?,
            },
            3 => NfsReply::Data { len: d.u64()? },
            4 => NfsReply::Wrote { len: d.u64()? },
            5 => {
                let n = d.u32()? as usize;
                if n > 100_000 {
                    return Err(Errno::EINVAL);
                }
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(d.string()?);
                }
                NfsReply::Names(names)
            }
            6 => NfsReply::Ok,
            _ => return Err(Errno::EINVAL),
        };
        Ok(RpcReply { xid, reply })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let calls = vec![
            NfsCall::Null,
            NfsCall::Getattr { fh: 42 },
            NfsCall::Lookup {
                dir: 1,
                name: "Makefile".into(),
            },
            NfsCall::Read {
                fh: 9,
                off: 8192,
                len: 8192,
            },
            NfsCall::Write {
                fh: 9,
                off: 0,
                len: 1024,
            },
            NfsCall::Create {
                dir: 1,
                name: "a.o".into(),
                exclusive: false,
            },
            NfsCall::Remove {
                dir: 1,
                name: "a.o".into(),
            },
            NfsCall::Mkdir {
                dir: 1,
                name: "sub".into(),
            },
            NfsCall::Rmdir {
                dir: 1,
                name: "sub".into(),
            },
            NfsCall::Readdir { dir: 1 },
            NfsCall::Rename {
                from_dir: 1,
                from_name: "a.tmp".into(),
                to_dir: 1,
                to_name: "a".into(),
            },
            NfsCall::Shutdown,
        ];
        for (i, call) in calls.into_iter().enumerate() {
            let req = RpcRequest {
                xid: i as u32,
                call,
            };
            let decoded = RpcRequest::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn replies_round_trip() {
        let attr = WireAttr {
            size: 123,
            is_dir: false,
            nlink: 1,
        };
        let replies = vec![
            NfsReply::Error(Errno::ENOENT),
            NfsReply::Attr(attr),
            NfsReply::Handle { fh: 77, attr },
            NfsReply::Data { len: 8192 },
            NfsReply::Wrote { len: 1024 },
            NfsReply::Names(vec!["a".into(), "bb".into(), "ccc".into()]),
            NfsReply::Ok,
        ];
        for (i, reply) in replies.into_iter().enumerate() {
            let r = RpcReply {
                xid: 1000 + i as u32,
                reply,
            };
            let decoded = RpcReply::decode(&r.encode()).unwrap();
            assert_eq!(decoded, r);
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(RpcRequest::decode(&[1, 2, 3]).is_err());
        assert!(RpcReply::decode(&[]).is_err());
        let mut e = XdrEncoder::new();
        e.u32(5).u32(77); // Unknown proc 77.
        assert_eq!(
            RpcRequest::decode(&e.into_bytes()).err(),
            Some(Errno::EINVAL)
        );
    }

    #[test]
    fn errno_codes_round_trip() {
        for e in [
            Errno::ENOENT,
            Errno::EEXIST,
            Errno::ENOTEMPTY,
            Errno::EISDIR,
            Errno::EIO,
        ] {
            assert_eq!(code_errno(errno_code(e)), e);
        }
    }
}
