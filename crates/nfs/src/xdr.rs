//! Minimal XDR (RFC 1014) encoding for the SunRPC/NFS messages.
//!
//! Everything on the simulated wire really is serialised: the RPC layer
//! builds byte buffers that travel through the UDP model, so message
//! sizes (and therefore wire times) come from the actual encoding.

use tnt_os::{Errno, SysResult};

/// XDR serialiser.
#[derive(Default)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// An empty encoder.
    pub fn new() -> XdrEncoder {
        XdrEncoder::default()
    }

    /// Appends a big-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian u64 (as an XDR hyper).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a bool as a u32.
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.u32(v as u32)
    }

    /// Appends a counted, 4-byte-padded opaque.
    pub fn opaque(&mut self, bytes: &[u8]) -> &mut Self {
        self.u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
        let pad = (4 - bytes.len() % 4) % 4;
        self.buf.extend(std::iter::repeat_n(0u8, pad));
        self
    }

    /// Appends a string as an opaque.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.opaque(s.as_bytes())
    }

    /// Finishes encoding.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// XDR deserialiser. Every accessor fails with `EINVAL` on truncated or
/// malformed input rather than panicking.
pub struct XdrDecoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Wraps a byte buffer.
    pub fn new(data: &'a [u8]) -> XdrDecoder<'a> {
        XdrDecoder { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> SysResult<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(Errno::EINVAL);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a u32.
    pub fn u32(&mut self) -> SysResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a u64.
    pub fn u64(&mut self) -> SysResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a bool.
    pub fn boolean(&mut self) -> SysResult<bool> {
        Ok(self.u32()? != 0)
    }

    /// Reads a counted, padded opaque.
    pub fn opaque(&mut self) -> SysResult<&'a [u8]> {
        let n = self.u32()? as usize;
        let body = self.take(n)?;
        let pad = (4 - n % 4) % 4;
        self.take(pad)?;
        Ok(body)
    }

    /// Reads a string.
    pub fn string(&mut self) -> SysResult<String> {
        let b = self.opaque()?;
        String::from_utf8(b.to_vec()).map_err(|_| Errno::EINVAL)
    }

    /// Whether all input has been consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut e = XdrEncoder::new();
        e.u32(7).u64(1 << 40).boolean(true).boolean(false);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.u32().unwrap(), 7);
        assert_eq!(d.u64().unwrap(), 1 << 40);
        assert!(d.boolean().unwrap());
        assert!(!d.boolean().unwrap());
        assert!(d.finished());
    }

    #[test]
    fn strings_are_padded_to_four() {
        let mut e = XdrEncoder::new();
        e.string("abcde"); // 4 len + 5 data + 3 pad
        let bytes = e.into_bytes();
        assert_eq!(bytes.len(), 12);
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.string().unwrap(), "abcde");
        assert!(d.finished());
    }

    #[test]
    fn truncation_is_einval_not_panic() {
        let mut e = XdrEncoder::new();
        e.string("hello world");
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes[..6]);
        assert_eq!(d.string().err(), Some(Errno::EINVAL));
        let mut d = XdrDecoder::new(&[0, 0]);
        assert_eq!(d.u32().err(), Some(Errno::EINVAL));
    }

    #[test]
    fn bogus_length_is_einval() {
        let mut e = XdrEncoder::new();
        e.u32(1_000_000); // Claims a megabyte of opaque that isn't there.
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.opaque().err(), Some(Errno::EINVAL));
    }

    #[test]
    fn empty_opaque() {
        let mut e = XdrEncoder::new();
        e.opaque(&[]);
        let bytes = e.into_bytes();
        assert_eq!(bytes.len(), 4);
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.opaque().unwrap(), &[] as &[u8]);
    }
}
