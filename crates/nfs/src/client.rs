//! The NFS client: a [`Filesystem`] implementation that forwards
//! operations over SunRPC/UDP to a server machine.
//!
//! Because it implements the same VFS trait as the local filesystems,
//! the Modified Andrew Benchmark runs over NFS unchanged — exactly the
//! paper's Section 10 setup.
//!
//! Per-OS client behaviour (the Table 6/7 story):
//!
//! - **transfer size**: the Linux 1.2.8 client moves data in 1 KB RPCs;
//!   FreeBSD and Solaris use 8 KB. Against the Linux server's
//!   asynchronous writes the extra RPCs cost only CPU and wire time, but
//!   against the SunOS server every WRITE RPC pays a disk commit — eight
//!   times as many commits is how the Linux client "performs miserably"
//!   against a SunOS server (115.06 s vs FreeBSD's 67.60 s);
//! - **attribute caching**: the FreeBSD client answers repeated stats
//!   locally; the others go back to the server.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::proto::{Fh, NfsCall, NfsReply, RpcReply, RpcRequest};
use tnt_cpu::copyin_out;
use tnt_net::{Addr, Net, Recv, UdpSocket};
use tnt_os::{Errno, FileAttr, Filesystem, KEnv, Kernel, OpenFlags, Os, SysResult, VnodeId};
use tnt_sim::trace::{Class, Counter};
use tnt_sim::{Cycles, SimMutex};

/// Per-OS client parameters.
#[derive(Clone, Copy, Debug)]
pub struct NfsClientParams {
    /// READ transfer size.
    pub rsize: u64,
    /// WRITE transfer size.
    pub wsize: u64,
    /// Whether attributes are cached client-side.
    pub attr_cache: bool,
    /// Client CPU per RPC issued.
    pub per_op_cy: u64,
    /// CPU for an operation served entirely from client caches.
    pub cache_hit_cy: u64,
    /// Bytes of file data the client may cache (the 1995 clients shared
    /// a pressured buffer cache; this is deliberately small).
    pub data_cache_bytes: u64,
    /// Issue a commit RPC on last close (Solaris close-to-open write
    /// semantics; expensive against a spec-compliant sync server).
    pub close_commit: bool,
}

impl NfsClientParams {
    /// The client personality of `os`.
    pub fn for_os(os: Os) -> NfsClientParams {
        match os {
            // The 1.2.8 client: 1 KB transfers, no attribute cache.
            Os::Linux => NfsClientParams {
                rsize: 1024,
                wsize: 1024,
                attr_cache: false,
                per_op_cy: 8_000,
                cache_hit_cy: 1_200,
                data_cache_bytes: 256 * 1024,
                close_commit: false,
            },
            Os::FreeBsd => NfsClientParams {
                rsize: 8192,
                wsize: 8192,
                attr_cache: true,
                per_op_cy: 10_000,
                cache_hit_cy: 1_500,
                data_cache_bytes: 512 * 1024,
                close_commit: false,
            },
            Os::Solaris => NfsClientParams {
                rsize: 8192,
                wsize: 8192,
                attr_cache: true,
                per_op_cy: 18_000,
                cache_hit_cy: 2_500,
                data_cache_bytes: 512 * 1024,
                close_commit: true,
            },
            Os::SunOs => NfsClientParams {
                rsize: 8192,
                wsize: 8192,
                attr_cache: true,
                per_op_cy: 10_000,
                cache_hit_cy: 1_500,
                data_cache_bytes: 512 * 1024,
                close_commit: false,
            },
        }
    }
}

/// Initial RPC retransmission timeout (700 ms, the classic default).
const RPC_TIMEOUT: Cycles = Cycles(70_000_000);

/// Cap on the doubling retransmission backoff (60 s, `timeo` ceiling).
/// Without it the doubled timeout grows without bound: six attempts is
/// fine, but any retry-limit bump would have waits measured in minutes.
const RPC_MAX_TIMEOUT: Cycles = Cycles(6_000_000_000);

/// Retransmissions before the client declares a major timeout and gives
/// up with `ETIMEDOUT` (a soft mount's "server not responding").
const RPC_RETRIES: u32 = 5;

/// The next backoff step: doubled, but never past [`RPC_MAX_TIMEOUT`].
fn next_backoff(timeout: Cycles) -> Cycles {
    Cycles(timeout.0.saturating_mul(2).min(RPC_MAX_TIMEOUT.0))
}

struct CState {
    xid: u32,
    root: Fh,
    /// Directory name cache: absolute path -> handle.
    dnlc: BTreeMap<String, Fh>,
    /// Attribute cache.
    attrs: BTreeMap<Fh, FileAttr>,
    /// Highest contiguously cached byte per file (client data cache).
    data_hi: BTreeMap<Fh, u64>,
    /// FIFO of files in the data cache (for budget eviction).
    data_order: Vec<Fh>,
    /// RPCs issued, by procedure name.
    rpc_counts: BTreeMap<&'static str, u64>,
    /// Retransmissions performed (lost request or lost reply).
    retransmits: u64,
    /// RPCs abandoned after the full retry budget (ETIMEDOUT surfaced).
    major_timeouts: u64,
}

/// A mounted NFS filesystem (the client side).
pub struct NfsClient {
    sock: Arc<UdpSocket>,
    server: Addr,
    params: NfsClientParams,
    rpc_lock: SimMutex,
    state: Mutex<CState>,
}

impl NfsClient {
    /// Mounts `server` from `kernel`'s machine (`client_host` on `net`).
    pub fn mount(
        net: &Net,
        kernel: &Kernel,
        client_host: u32,
        server: Addr,
    ) -> SysResult<Arc<NfsClient>> {
        let params = NfsClientParams::for_os(kernel.costs().os);
        let sock = UdpSocket::bind(net, kernel, client_host, 700)?;
        let client = Arc::new(NfsClient {
            sock,
            server,
            params,
            rpc_lock: SimMutex::new(kernel.sim()),
            state: Mutex::new(CState {
                xid: 0,
                root: 0,
                dnlc: BTreeMap::new(),
                attrs: BTreeMap::new(),
                data_hi: BTreeMap::new(),
                data_order: Vec::new(),
                rpc_counts: BTreeMap::new(),
                retransmits: 0,
                major_timeouts: 0,
            }),
        });
        Ok(client)
    }

    /// The client's parameters.
    pub fn params(&self) -> NfsClientParams {
        self.params
    }

    /// RPCs issued so far, by procedure name.
    pub fn rpc_counts(&self) -> BTreeMap<&'static str, u64> {
        self.state.lock().rpc_counts.clone()
    }

    /// Total RPCs issued.
    pub fn rpc_total(&self) -> u64 {
        self.state.lock().rpc_counts.values().sum()
    }

    /// Retransmissions performed so far (non-zero only on a lossy wire).
    pub fn retransmits(&self) -> u64 {
        self.state.lock().retransmits
    }

    /// RPCs that exhausted their retry budget and surfaced `ETIMEDOUT`.
    pub fn major_timeouts(&self) -> u64 {
        self.state.lock().major_timeouts
    }

    fn call_name(call: &NfsCall) -> &'static str {
        match call {
            NfsCall::Null => "null",
            NfsCall::Getattr { .. } => "getattr",
            NfsCall::Lookup { .. } => "lookup",
            NfsCall::Read { .. } => "read",
            NfsCall::Write { .. } => "write",
            NfsCall::Create { .. } => "create",
            NfsCall::Remove { .. } => "remove",
            NfsCall::Mkdir { .. } => "mkdir",
            NfsCall::Rmdir { .. } => "rmdir",
            NfsCall::Readdir { .. } => "readdir",
            NfsCall::Rename { .. } => "rename",
            NfsCall::Shutdown => "shutdown",
        }
    }

    /// Issues one RPC and waits for its reply. Serialised per mount, as
    /// the 1995 single-threaded clients effectively were.
    fn rpc(&self, env: &KEnv, call: NfsCall, pad: u64) -> SysResult<NfsReply> {
        self.rpc_lock.lock(&env.sim);
        let result = self.rpc_locked(env, call, pad);
        self.rpc_lock.unlock(&env.sim);
        result
    }

    fn rpc_locked(&self, env: &KEnv, call: NfsCall, pad: u64) -> SysResult<NfsReply> {
        let xid = {
            let mut st = self.state.lock();
            st.xid += 1;
            *st.rpc_counts.entry(Self::call_name(&call)).or_insert(0) += 1;
            st.xid
        };
        env.sim.count(Counter::RpcCalls, 1);
        {
            let _s = env.sim.span(Class::ProtoCpu);
            env.sim.charge(Cycles(self.params.per_op_cy));
        }
        let bytes = RpcRequest { xid, call }.encode();
        // Send, then wait with the classic doubling timeout; a lost
        // request or lost reply is retransmitted with the SAME xid so
        // the server's duplicate-request cache can absorb replays.
        // Everything from first send to matching reply counts as RPC
        // round-trip time in the profile.
        let _rpc = env.sim.span(Class::RpcWait);
        let mut timeout = RPC_TIMEOUT;
        for attempt in 0..=RPC_RETRIES {
            if attempt > 0 {
                self.state.lock().retransmits += 1;
                env.sim.count(Counter::RpcRetransmits, 1);
            }
            self.sock.send_padded(self.server, bytes.clone(), pad)?;
            let deadline = env.sim.now() + timeout;
            loop {
                let left = deadline.saturating_sub(env.sim.now());
                if left == Cycles::ZERO {
                    break;
                }
                match self.sock.recv_timeout(left)? {
                    Recv::Packet(pkt) => match RpcReply::decode(&pkt.data) {
                        Ok(r) if r.xid == xid => {
                            return match r.reply {
                                NfsReply::Error(e) => Err(e),
                                other => Ok(other),
                            };
                        }
                        _ => continue, // Stale xid or garbage.
                    },
                    Recv::TimedOut => break,
                    Recv::Closed => return Err(Errno::EIO),
                }
            }
            timeout = next_backoff(timeout);
        }
        // Major timeout: the retry budget is spent. Surface ETIMEDOUT —
        // distinct from a transport EIO — and account for it.
        self.state.lock().major_timeouts += 1;
        env.sim.count(Counter::RpcMajorTimeouts, 1);
        Err(Errno::ETIMEDOUT)
    }

    fn root(&self, env: &KEnv) -> SysResult<Fh> {
        {
            let st = self.state.lock();
            if st.root != 0 {
                return Ok(st.root);
            }
        }
        match self.rpc(
            env,
            NfsCall::Lookup {
                dir: 0,
                name: String::new(),
            },
            0,
        )? {
            NfsReply::Handle { fh, attr } => {
                let mut st = self.state.lock();
                st.root = fh;
                st.attrs.insert(
                    fh,
                    FileAttr {
                        vnode: fh,
                        size: attr.size,
                        is_dir: attr.is_dir,
                        nlink: attr.nlink,
                    },
                );
                Ok(fh)
            }
            _ => Err(Errno::EIO),
        }
    }

    /// Resolves a path to a handle through the name cache, issuing LOOKUP
    /// RPCs for uncached components.
    fn fh_for(&self, env: &KEnv, path: &str) -> SysResult<Fh> {
        let mut fh = self.root(env)?;
        let mut walked = String::new();
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            walked.push('/');
            walked.push_str(comp);
            let cached = self.state.lock().dnlc.get(&walked).copied();
            match cached {
                Some(hit) => {
                    env.sim.charge(Cycles(self.params.cache_hit_cy / 4));
                    fh = hit;
                }
                None => {
                    match self.rpc(
                        env,
                        NfsCall::Lookup {
                            dir: fh,
                            name: comp.to_string(),
                        },
                        0,
                    )? {
                        NfsReply::Handle { fh: child, attr } => {
                            let mut st = self.state.lock();
                            st.dnlc.insert(walked.clone(), child);
                            st.attrs.insert(
                                child,
                                FileAttr {
                                    vnode: child,
                                    size: attr.size,
                                    is_dir: attr.is_dir,
                                    nlink: attr.nlink,
                                },
                            );
                            fh = child;
                        }
                        _ => return Err(Errno::EIO),
                    }
                }
            }
        }
        Ok(fh)
    }

    fn split_parent(path: &str) -> SysResult<(&str, &str)> {
        let trimmed = path.trim_end_matches('/');
        let (dir, name) = match trimmed.rfind('/') {
            Some(pos) => (&trimmed[..pos], &trimmed[pos + 1..]),
            None => ("", trimmed),
        };
        if name.is_empty() {
            return Err(Errno::EINVAL);
        }
        Ok((dir, name))
    }

    /// Clears every client-side cache (a fresh mount's view; called by
    /// experiments between setup and measurement).
    pub fn flush_caches(&self) {
        let mut st = self.state.lock();
        st.dnlc.clear();
        st.attrs.clear();
        st.data_hi.clear();
        st.data_order.clear();
    }

    /// Records that `fh` is cached up to `hi` bytes, evicting the oldest
    /// files once the data-cache budget is exceeded.
    fn mark_cached(&self, fh: Fh, hi: u64) {
        let mut st = self.state.lock();
        if !st.data_hi.contains_key(&fh) {
            st.data_order.push(fh);
        }
        st.data_hi.insert(fh, hi);
        let mut total: u64 = st.data_hi.values().sum();
        while total > self.params.data_cache_bytes && st.data_order.len() > 1 {
            let victim = st.data_order.remove(0);
            if victim == fh {
                st.data_order.push(victim);
                continue;
            }
            if let Some(bytes) = st.data_hi.remove(&victim) {
                total -= bytes;
            }
        }
    }

    fn store_attr(&self, fh: Fh, attr: crate::proto::WireAttr) {
        self.state.lock().attrs.insert(
            fh,
            FileAttr {
                vnode: fh,
                size: attr.size,
                is_dir: attr.is_dir,
                nlink: attr.nlink,
            },
        );
    }
}

impl Filesystem for NfsClient {
    fn lookup(&self, env: &KEnv, path: &str) -> SysResult<VnodeId> {
        self.fh_for(env, path)
    }

    fn open(&self, env: &KEnv, path: &str, flags: OpenFlags) -> SysResult<VnodeId> {
        if flags.create {
            let (dir, name) = Self::split_parent(path)?;
            let dir_fh = self.fh_for(env, dir)?;
            let reply = self.rpc(
                env,
                NfsCall::Create {
                    dir: dir_fh,
                    name: name.to_string(),
                    exclusive: flags.exclusive,
                },
                0,
            )?;
            match reply {
                NfsReply::Handle { fh, attr } => {
                    let mut st = self.state.lock();
                    st.dnlc
                        .insert(format!("{}/{}", dir.trim_end_matches('/'), name), fh);
                    st.data_hi.remove(&fh);
                    st.data_order.retain(|f| *f != fh);
                    drop(st);
                    self.store_attr(fh, attr);
                    Ok(fh)
                }
                _ => Err(Errno::EIO),
            }
        } else {
            let fh = self.fh_for(env, path)?;
            // Close-to-open consistency: every open revalidates the
            // attributes at the server, whatever the attribute cache says.
            let is_dir = match self.rpc(env, NfsCall::Getattr { fh }, 0)? {
                NfsReply::Attr(attr) => {
                    self.store_attr(fh, attr);
                    attr.is_dir
                }
                _ => return Err(Errno::EIO),
            };
            if is_dir && flags.write {
                return Err(Errno::EISDIR);
            }
            if flags.truncate {
                let (dir, name) = Self::split_parent(path)?;
                let dir_fh = self.fh_for(env, dir)?;
                self.rpc(
                    env,
                    NfsCall::Create {
                        dir: dir_fh,
                        name: name.to_string(),
                        exclusive: false,
                    },
                    0,
                )?;
                self.state.lock().data_hi.remove(&fh);
            }
            Ok(fh)
        }
    }

    fn read(&self, env: &KEnv, vnode: VnodeId, off: u64, len: u64) -> SysResult<u64> {
        let attr = self.getattr_cached(env, vnode)?;
        if attr.is_dir {
            return Err(Errno::EISDIR);
        }
        let size = attr.size;
        if off >= size {
            env.sim.charge(Cycles(self.params.cache_hit_cy));
            return Ok(0);
        }
        let n = len.min(size - off);
        let cached_hi = self.state.lock().data_hi.get(&vnode).copied().unwrap_or(0);
        if off + n <= cached_hi {
            // Served from the client's data cache.
            env.sim
                .charge(Cycles(self.params.cache_hit_cy) + copyin_out(n));
            return Ok(n);
        }
        let mut done = 0;
        while done < n {
            let chunk = (n - done).min(self.params.rsize);
            match self.rpc(
                env,
                NfsCall::Read {
                    fh: vnode,
                    off: off + done,
                    len: chunk,
                },
                0,
            )? {
                NfsReply::Data { len: got } => {
                    env.sim.charge(copyin_out(got));
                    done += got;
                    if got < chunk {
                        break;
                    }
                }
                _ => return Err(Errno::EIO),
            }
        }
        let hi_now = self.state.lock().data_hi.get(&vnode).copied().unwrap_or(0);
        if off <= hi_now {
            self.mark_cached(vnode, hi_now.max(off + done));
        }
        Ok(done)
    }

    fn write(&self, env: &KEnv, vnode: VnodeId, off: u64, len: u64) -> SysResult<u64> {
        if self.getattr_cached(env, vnode)?.is_dir {
            return Err(Errno::EISDIR);
        }
        let mut done = 0;
        while done < len {
            let chunk = (len - done).min(self.params.wsize);
            env.sim.charge(copyin_out(chunk));
            match self.rpc(
                env,
                NfsCall::Write {
                    fh: vnode,
                    off: off + done,
                    len: chunk,
                },
                chunk,
            )? {
                NfsReply::Wrote { len: wrote } => done += wrote,
                _ => return Err(Errno::EIO),
            }
        }
        let hi_now = {
            let mut st = self.state.lock();
            if let Some(a) = st.attrs.get_mut(&vnode) {
                a.size = a.size.max(off + len);
            }
            st.data_hi.get(&vnode).copied().unwrap_or(0)
        };
        if off <= hi_now {
            self.mark_cached(vnode, hi_now.max(off + len));
        }
        Ok(len)
    }

    fn getattr(&self, env: &KEnv, vnode: VnodeId) -> SysResult<FileAttr> {
        self.getattr_cached(env, vnode)
    }

    fn unlink(&self, env: &KEnv, path: &str) -> SysResult<()> {
        let (dir, name) = Self::split_parent(path)?;
        let dir_fh = self.fh_for(env, dir)?;
        self.rpc(
            env,
            NfsCall::Remove {
                dir: dir_fh,
                name: name.to_string(),
            },
            0,
        )?;
        let mut st = self.state.lock();
        if let Some(fh) = st
            .dnlc
            .remove(&format!("{}/{}", dir.trim_end_matches('/'), name))
        {
            st.attrs.remove(&fh);
            st.data_hi.remove(&fh);
        }
        Ok(())
    }

    fn mkdir(&self, env: &KEnv, path: &str) -> SysResult<()> {
        let (dir, name) = Self::split_parent(path)?;
        let dir_fh = self.fh_for(env, dir)?;
        match self.rpc(
            env,
            NfsCall::Mkdir {
                dir: dir_fh,
                name: name.to_string(),
            },
            0,
        )? {
            NfsReply::Handle { fh, attr } => {
                self.state
                    .lock()
                    .dnlc
                    .insert(format!("{}/{}", dir.trim_end_matches('/'), name), fh);
                self.store_attr(fh, attr);
                Ok(())
            }
            _ => Err(Errno::EIO),
        }
    }

    fn rmdir(&self, env: &KEnv, path: &str) -> SysResult<()> {
        let (dir, name) = Self::split_parent(path)?;
        let dir_fh = self.fh_for(env, dir)?;
        self.rpc(
            env,
            NfsCall::Rmdir {
                dir: dir_fh,
                name: name.to_string(),
            },
            0,
        )?;
        let mut st = self.state.lock();
        if let Some(fh) = st
            .dnlc
            .remove(&format!("{}/{}", dir.trim_end_matches('/'), name))
        {
            st.attrs.remove(&fh);
        }
        Ok(())
    }

    fn readdir(&self, env: &KEnv, path: &str) -> SysResult<Vec<String>> {
        let fh = self.fh_for(env, path)?;
        match self.rpc(env, NfsCall::Readdir { dir: fh }, 0)? {
            NfsReply::Names(names) => Ok(names),
            _ => Err(Errno::EIO),
        }
    }

    fn fsync(&self, _env: &KEnv, _vnode: VnodeId) -> SysResult<()> {
        // NFSv2 writes are write-through from the client's perspective.
        Ok(())
    }

    fn sync(&self, _env: &KEnv) {}

    fn rename(&self, env: &KEnv, from: &str, to: &str) -> SysResult<()> {
        let (from_dir, from_name) = Self::split_parent(from)?;
        let (to_dir, to_name) = Self::split_parent(to)?;
        let from_fh = self.fh_for(env, from_dir)?;
        let to_fh = self.fh_for(env, to_dir)?;
        self.rpc(
            env,
            NfsCall::Rename {
                from_dir: from_fh,
                from_name: from_name.to_string(),
                to_dir: to_fh,
                to_name: to_name.to_string(),
            },
            0,
        )?;
        let mut st = self.state.lock();
        let from_key = format!("{}/{}", from_dir.trim_end_matches('/'), from_name);
        let to_key = format!("{}/{}", to_dir.trim_end_matches('/'), to_name);
        // The target's old identity (if any) is gone; the source's handle
        // moves to the target name.
        if let Some(clobbered) = st.dnlc.remove(&to_key) {
            st.attrs.remove(&clobbered);
            st.data_hi.remove(&clobbered);
        }
        if let Some(fh) = st.dnlc.remove(&from_key) {
            st.dnlc.insert(to_key, fh);
        }
        Ok(())
    }

    fn release(&self, env: &KEnv, vnode: VnodeId) {
        if self.params.close_commit {
            // Solaris flushes the file's state on close; against a
            // spec-compliant server this commits the inode to disk.
            let _ = self.rpc(
                env,
                NfsCall::Write {
                    fh: vnode,
                    off: 0,
                    len: 0,
                },
                0,
            );
        }
    }
}

impl NfsClient {
    fn getattr_cached(&self, env: &KEnv, vnode: VnodeId) -> SysResult<FileAttr> {
        if self.params.attr_cache {
            if let Some(a) = self.state.lock().attrs.get(&vnode) {
                env.sim.charge(Cycles(self.params.cache_hit_cy));
                return Ok(*a);
            }
        }
        match self.rpc(env, NfsCall::Getattr { fh: vnode }, 0)? {
            NfsReply::Attr(attr) => {
                let a = FileAttr {
                    vnode,
                    size: attr.size,
                    is_dir: attr.is_dir,
                    nlink: attr.nlink,
                };
                self.state.lock().attrs.insert(vnode, a);
                Ok(a)
            }
            _ => Err(Errno::EIO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_until_the_cap() {
        let mut t = RPC_TIMEOUT;
        for _ in 0..RPC_RETRIES {
            t = next_backoff(t);
            assert!(t <= RPC_MAX_TIMEOUT, "backoff exceeded the cap: {t:?}");
        }
        // Many more doublings still respect the ceiling (the original
        // code grew without bound here).
        for _ in 0..64 {
            t = next_backoff(t);
        }
        assert_eq!(t, RPC_MAX_TIMEOUT);
    }

    #[test]
    fn backoff_is_monotone_from_the_initial_timeout() {
        assert_eq!(next_backoff(RPC_TIMEOUT), Cycles(RPC_TIMEOUT.0 * 2));
        assert!(next_backoff(RPC_MAX_TIMEOUT) == RPC_MAX_TIMEOUT);
    }
}
