//! Failure injection: NFS over a lossy Ethernet. Requests and replies
//! vanish; the client's retransmission (same xid, doubling timeout) and
//! the server's duplicate-request cache must keep the semantics exact.

use std::sync::Arc;

use parking_lot::Mutex;
use tnt_fs::SimFs;
use tnt_net::{Net, UdpSocket};
use tnt_nfs::{serve, NfsCall, NfsClient, NfsReply, NfsServerConfig, RpcReply, RpcRequest};
use tnt_os::{boot_cluster, Errno, OpenFlags, Os, UProc};

struct Rig {
    sim: tnt_sim::Sim,
    net: Net,
    client_kernel: tnt_os::Kernel,
    server_kernel: tnt_os::Kernel,
    mount: Arc<NfsClient>,
    server: tnt_nfs::NfsServer,
    client_host: u32,
}

fn rig(loss: f64, seed: u64) -> Rig {
    let (sim, kernels) = boot_cluster(&[Os::FreeBsd, Os::SunOs], seed);
    let net = Net::ethernet_10mbit();
    let client_host = net.register_host(&kernels[0]);
    let server_host = net.register_host(&kernels[1]);
    let server_fs = SimFs::fresh_for_os(Os::SunOs);
    kernels[1].mount(server_fs.clone());
    let server = serve(
        &net,
        &kernels[1],
        server_host,
        server_fs,
        NfsServerConfig::for_os(Os::SunOs),
    )
    .unwrap();
    let mount = NfsClient::mount(&net, &kernels[0], client_host, server.addr()).unwrap();
    kernels[0].mount(mount.clone());
    net.set_loss(loss);
    Rig {
        sim,
        net,
        client_kernel: kernels[0].clone(),
        server_kernel: kernels[1].clone(),
        mount,
        server,
        client_host,
    }
}

fn run_client(rig: &Rig, f: impl FnOnce(&UProc) + Send + 'static) {
    rig.client_kernel.spawn_user("client", move |p| {
        f(&p);
        p.sim().stop();
    });
    rig.sim.run().unwrap();
}

#[test]
fn workload_survives_ten_percent_loss() {
    let r = rig(0.10, 42);
    run_client(&r, |p| {
        p.mkdir("/d").unwrap();
        for i in 0..8 {
            let fd = p.creat(&format!("/d/f{i}")).unwrap();
            p.write(fd, 12_000).unwrap();
            p.close(fd).unwrap();
        }
        for i in 0..8 {
            let fd = p.open(&format!("/d/f{i}"), OpenFlags::rdonly()).unwrap();
            let mut total = 0;
            loop {
                let n = p.read(fd, 8192).unwrap();
                if n == 0 {
                    break;
                }
                total += n;
            }
            assert_eq!(total, 12_000, "file f{i} intact despite loss");
            p.close(fd).unwrap();
        }
        let mut names = p.readdir("/d").unwrap();
        names.sort();
        assert_eq!(names.len(), 8);
        for i in 0..8 {
            p.unlink(&format!("/d/f{i}")).unwrap();
        }
        p.rmdir("/d").unwrap();
        assert_eq!(p.stat("/d").err(), Some(Errno::ENOENT));
    });
    assert!(r.net.dropped_frames() > 0, "the wire really was lossy");
    assert!(r.mount.retransmits() > 0, "the client really retransmitted");
}

#[test]
fn lossless_wire_never_retransmits() {
    let r = rig(0.0, 1);
    run_client(&r, |p| {
        let fd = p.creat("/f").unwrap();
        p.write(fd, 64 * 1024).unwrap();
        p.close(fd).unwrap();
    });
    assert_eq!(r.net.dropped_frames(), 0);
    assert_eq!(r.mount.retransmits(), 0);
    assert_eq!(r.server.stats().dup_hits, 0);
}

#[test]
fn loss_costs_time_but_not_correctness() {
    let elapsed = |loss: f64| {
        let r = rig(loss, 7);
        let t = Arc::new(Mutex::new(0.0f64));
        let t2 = t.clone();
        run_client(&r, move |p| {
            let t0 = p.sim().now();
            let fd = p.creat("/f").unwrap();
            p.write(fd, 128 * 1024).unwrap();
            p.close(fd).unwrap();
            assert_eq!(p.stat("/f").unwrap().size, 128 * 1024);
            *t2.lock() = (p.sim().now() - t0).as_secs();
        });
        let v = *t.lock();
        v
    };
    let clean = elapsed(0.0);
    let lossy = elapsed(0.15);
    assert!(
        lossy > clean * 1.5,
        "timeouts cost real time: {lossy:.2}s vs {clean:.2}s"
    );
}

#[test]
fn duplicate_request_cache_replays_nonidempotent_ops() {
    // Drive the server directly with a hand-rolled retransmission of a
    // REMOVE: without the cache, the replay would observe ENOENT.
    let r = rig(0.0, 3);
    let net = r.net.clone();
    let kernel = r.client_kernel.clone();
    let server_addr = r.server.addr();
    let host = r.client_host;
    run_client(&r, move |p| {
        // Create a file through the normal mount.
        let fd = p.creat("/victim").unwrap();
        p.close(fd).unwrap();
        // Speak raw RPC: look the file up, remove it, then replay the
        // identical REMOVE datagram (same xid).
        let sock = UdpSocket::bind(&net, &kernel, host, 900).unwrap();
        let rpc = |call: NfsCall, xid: u32| {
            let req = RpcRequest { xid, call };
            sock.send_to(server_addr, req.encode()).unwrap();
            let pkt = sock.recv().unwrap().unwrap();
            RpcReply::decode(&pkt.data).unwrap()
        };
        let root = match rpc(
            NfsCall::Lookup {
                dir: 0,
                name: String::new(),
            },
            1,
        )
        .reply
        {
            NfsReply::Handle { fh, .. } => fh,
            other => panic!("no root handle: {other:?}"),
        };
        let first = rpc(
            NfsCall::Remove {
                dir: root,
                name: "victim".into(),
            },
            2,
        );
        assert_eq!(first.reply, NfsReply::Ok);
        // The "retransmission": byte-identical request, same xid.
        let replay = rpc(
            NfsCall::Remove {
                dir: root,
                name: "victim".into(),
            },
            2,
        );
        assert_eq!(
            replay.reply,
            NfsReply::Ok,
            "dup cache must replay Ok, not re-execute to ENOENT"
        );
        // A genuinely new REMOVE (fresh xid) does observe ENOENT.
        let fresh = rpc(
            NfsCall::Remove {
                dir: root,
                name: "victim".into(),
            },
            3,
        );
        assert_eq!(fresh.reply, NfsReply::Error(Errno::ENOENT));
    });
    assert_eq!(r.server.stats().dup_hits, 1);
    let _ = r.server_kernel;
}

#[test]
fn oracle_semantics_hold_under_loss() {
    // The same op script on a clean and a lossy wire observes identical
    // results (only the clock differs).
    let script = |p: &UProc| -> Vec<String> {
        let mut out = Vec::new();
        out.push(format!("{:?}", p.mkdir("/a").err()));
        let fd = p.creat("/a/x").unwrap();
        out.push(format!("{:?}", p.write(fd, 30_000)));
        p.close(fd).unwrap();
        out.push(format!("{:?}", p.stat("/a/x").map(|a| a.size)));
        out.push(format!("{:?}", p.unlink("/a/x").err()));
        out.push(format!("{:?}", p.unlink("/a/x").err()));
        out
    };
    let run = |loss: f64| {
        let r = rig(loss, 11);
        let out = Arc::new(Mutex::new(Vec::new()));
        let o2 = out.clone();
        run_client(&r, move |p| {
            *o2.lock() = script(p);
        });
        let v = out.lock().clone();
        v
    };
    assert_eq!(run(0.0), run(0.12));
}
