//! The deterministic fault plane against NFS: seed-driven RPC request
//! and reply loss injected by `FaultProfile` (not the legacy
//! `Net::set_loss` knob). The client's retransmission machinery and the
//! server's duplicate-request cache must keep semantics exact; total
//! loss must surface as `ETIMEDOUT` after the retries are exhausted,
//! and the whole circus must be byte-deterministic per seed.

use std::sync::Arc;

use parking_lot::Mutex;
use tnt_fs::SimFs;
use tnt_net::Net;
use tnt_nfs::{serve, NfsClient, NfsServerConfig};
use tnt_os::{boot_cluster_with_faults, Errno, Kernel, OpenFlags, Os, UProc};
use tnt_sim::fault::FaultProfile;

struct Rig {
    sim: tnt_sim::Sim,
    client_kernel: Kernel,
    mount: Arc<NfsClient>,
    server: tnt_nfs::NfsServer,
}

fn rig(faults: FaultProfile, seed: u64) -> Rig {
    let (sim, kernels) = boot_cluster_with_faults(&[Os::FreeBsd, Os::SunOs], seed, faults);
    let net = Net::ethernet_10mbit();
    let client_host = net.register_host(&kernels[0]);
    let server_host = net.register_host(&kernels[1]);
    let server_fs = SimFs::fresh_for_os(Os::SunOs);
    kernels[1].mount(server_fs.clone());
    let server = serve(
        &net,
        &kernels[1],
        server_host,
        server_fs,
        NfsServerConfig::for_os(Os::SunOs),
    )
    .unwrap();
    let mount = NfsClient::mount(&net, &kernels[0], client_host, server.addr()).unwrap();
    kernels[0].mount(mount.clone());
    Rig {
        sim,
        client_kernel: kernels[0].clone(),
        mount,
        server,
    }
}

fn run_client(rig: &Rig, f: impl FnOnce(&UProc) + Send + 'static) {
    rig.client_kernel.spawn_user("client", move |p| {
        f(&p);
        p.sim().stop();
    });
    rig.sim.run().unwrap();
}

/// A small non-idempotent workload; returns every observable outcome so
/// determinism tests can compare whole runs.
fn workload(p: &UProc) -> Vec<String> {
    let mut out = Vec::new();
    out.push(format!("{:?}", p.mkdir("/d").err()));
    for i in 0..6 {
        let fd = p.creat(&format!("/d/f{i}")).unwrap();
        out.push(format!("{:?}", p.write(fd, 20_000)));
        p.close(fd).unwrap();
    }
    for i in 0..6 {
        let fd = p.open(&format!("/d/f{i}"), OpenFlags::rdonly()).unwrap();
        let mut total = 0;
        loop {
            let n = p.read(fd, 8192).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        out.push(format!("f{i}={total}"));
        p.close(fd).unwrap();
    }
    for i in 0..6 {
        out.push(format!("{:?}", p.unlink(&format!("/d/f{i}")).err()));
    }
    out.push(format!("{:?}", p.rmdir("/d").err()));
    out.push(format!("{:?}", p.stat("/d").err()));
    out
}

#[test]
fn injected_request_loss_retransmits_until_it_lands() {
    // Requests vanish before the server sees them, so the client's
    // timeout/retransmit path carries the whole workload.
    let r = rig(
        FaultProfile {
            rpc_request_drop: 0.25,
            ..FaultProfile::off()
        },
        9,
    );
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = out.clone();
    run_client(&r, move |p| {
        *o2.lock() = workload(p);
    });
    assert!(
        r.mount.retransmits() > 0,
        "25% request loss must force retransmissions"
    );
    assert_eq!(
        r.mount.major_timeouts(),
        0,
        "loss this light must never exhaust the retries"
    );
    let out = out.lock().clone();
    assert!(out.iter().any(|l| l == "f5=20000"), "data intact: {out:?}");
}

#[test]
fn injected_reply_loss_exercises_the_dup_cache() {
    // The server executes the call but the reply vanishes, so the
    // retransmission is a true duplicate: the cache must replay the
    // recorded reply instead of re-executing non-idempotent ops (a
    // re-executed REMOVE would observe ENOENT, a re-executed CREATE
    // would observe EEXIST).
    let r = rig(
        FaultProfile {
            rpc_reply_drop: 0.25,
            ..FaultProfile::off()
        },
        5,
    );
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = out.clone();
    run_client(&r, move |p| {
        *o2.lock() = workload(p);
    });
    assert!(r.mount.retransmits() > 0, "lost replies look like timeouts");
    assert!(
        r.server.stats().dup_hits > 0,
        "retransmissions of executed calls must hit the dup cache"
    );
    let out = out.lock().clone();
    // Every unlink and the rmdir succeeded exactly once: None errors.
    assert!(
        out.iter().filter(|l| *l == "None").count() >= 8,
        "non-idempotent ops stayed exactly-once: {out:?}"
    );
    assert_eq!(out.last().map(String::as_str), Some("Some(ENOENT)"));
}

#[test]
fn total_reply_loss_times_out_with_etimedout() {
    // Satellite bugfix regression: retry exhaustion must surface as
    // ETIMEDOUT (not EIO) and be counted as a major timeout.
    let r = rig(
        FaultProfile {
            rpc_reply_drop: 1.0,
            ..FaultProfile::off()
        },
        2,
    );
    let err = Arc::new(Mutex::new(None));
    let e2 = err.clone();
    run_client(&r, move |p| {
        *e2.lock() = p.stat("/anything").err();
    });
    assert_eq!(*err.lock(), Some(Errno::ETIMEDOUT));
    assert!(
        r.mount.major_timeouts() >= 1,
        "exhaustion must be accounted as a major timeout"
    );
}

#[test]
fn lossy_runs_are_deterministic_per_seed() {
    // Same seed, same profile => identical observable outcomes, clocks
    // and fault counters. Different seed => (almost surely) a different
    // retransmission history, proving the faults really are seeded.
    let run = |seed: u64| {
        let r = rig(FaultProfile::lossy(), seed);
        let out = Arc::new(Mutex::new((Vec::new(), 0.0f64)));
        let o2 = out.clone();
        run_client(&r, move |p| {
            let t0 = p.sim().now();
            let script = workload(p);
            *o2.lock() = (script, (p.sim().now() - t0).as_secs());
        });
        let (script, secs) = out.lock().clone();
        (script, secs, r.mount.retransmits(), r.server.stats().dup_hits)
    };
    let a = run(13);
    let b = run(13);
    assert_eq!(a, b, "same seed must reproduce the run bit-for-bit");
    let c = run(14);
    assert_eq!(a.0, c.0, "semantics are seed-independent");
    assert!(
        a.1 != c.1 || a.2 != c.2,
        "a different seed should shuffle the fault history"
    );
}
