//! End-to-end NFS tests: a client machine and a server machine on the
//! 10 Mb/s Ethernet, exercising the full RPC path down to the server's
//! disk model.

use std::sync::Arc;

use parking_lot::Mutex;
use tnt_fs::SimFs;
use tnt_net::Net;
use tnt_nfs::{serve, NfsClient, NfsServerConfig};
use tnt_os::{boot_cluster, Errno, Kernel, OpenFlags, Os, UProc};
use tnt_sim::Cycles;

/// Boots a client/server pair, mounts NFS on the client, runs `f` as a
/// client process, and returns (elapsed, client RPC total).
fn run_nfs(client_os: Os, server_os: Os, f: impl FnOnce(&UProc) + Send + 'static) -> (Cycles, u64) {
    let (sim, kernels) = boot_cluster(&[client_os, server_os], 0);
    let (client_k, server_k): (&Kernel, &Kernel) = (&kernels[0], &kernels[1]);
    let net = Net::ethernet_10mbit();
    let client_host = net.register_host(client_k);
    let server_host = net.register_host(server_k);

    let server_fs = SimFs::fresh_for_os(server_os);
    server_k.mount(server_fs.clone());
    let server = serve(
        &net,
        server_k,
        server_host,
        server_fs,
        NfsServerConfig::for_os(server_os),
    )
    .unwrap();

    let mount = NfsClient::mount(&net, client_k, client_host, server.addr()).unwrap();
    client_k.mount(mount.clone());

    let elapsed = Arc::new(Mutex::new(Cycles::ZERO));
    let e2 = elapsed.clone();
    client_k.spawn_user("client-bench", move |p| {
        let t0 = p.sim().now();
        f(&p);
        *e2.lock() = p.sim().now() - t0;
        p.sim().stop(); // Tears down the nfsd daemon.
    });
    sim.run().unwrap();
    let t = *elapsed.lock();
    (t, mount.rpc_total())
}

#[test]
fn file_operations_work_over_nfs() {
    run_nfs(Os::FreeBsd, Os::Linux, |p| {
        p.mkdir("/proj").unwrap();
        let fd = p.creat("/proj/data").unwrap();
        assert_eq!(p.write(fd, 20_000).unwrap(), 20_000);
        p.close(fd).unwrap();

        let attr = p.stat("/proj/data").unwrap();
        assert_eq!(attr.size, 20_000);
        assert!(!attr.is_dir);

        let fd = p.open("/proj/data", OpenFlags::rdonly()).unwrap();
        let mut total = 0;
        loop {
            let n = p.read(fd, 8192).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(total, 20_000);
        p.close(fd).unwrap();

        assert_eq!(p.readdir("/proj").unwrap(), vec!["data"]);
        p.unlink("/proj/data").unwrap();
        assert_eq!(p.stat("/proj/data").err(), Some(Errno::ENOENT));
        p.rmdir("/proj").unwrap();
    });
}

#[test]
fn rename_works_over_nfs() {
    run_nfs(Os::FreeBsd, Os::Linux, |p| {
        p.mkdir("/src").unwrap();
        p.mkdir("/dst").unwrap();
        let fd = p.creat("/src/lib.o.tmp").unwrap();
        p.write(fd, 4000).unwrap();
        p.close(fd).unwrap();
        p.rename("/src/lib.o.tmp", "/dst/lib.o").unwrap();
        assert_eq!(p.stat("/src/lib.o.tmp").err(), Some(Errno::ENOENT));
        assert_eq!(p.stat("/dst/lib.o").unwrap().size, 4000);
        // The renamed file is still readable through the new name.
        let fd = p.open("/dst/lib.o", OpenFlags::rdonly()).unwrap();
        assert_eq!(p.read(fd, 8192).unwrap(), 4000);
        p.close(fd).unwrap();
    });
}

#[test]
fn nfs_errors_propagate() {
    run_nfs(Os::Solaris, Os::Linux, |p| {
        assert_eq!(
            p.open("/ghost", OpenFlags::rdonly()).err(),
            Some(Errno::ENOENT)
        );
        p.mkdir("/d").unwrap();
        assert_eq!(p.mkdir("/d").err(), Some(Errno::EEXIST));
        let fd = p.creat("/d/f").unwrap();
        p.close(fd).unwrap();
        assert_eq!(p.rmdir("/d").err(), Some(Errno::ENOTEMPTY));
    });
}

#[test]
fn sync_server_writes_cost_disk_time() {
    let workload = |p: &UProc| {
        let fd = p.creat("/w").unwrap();
        for _ in 0..16 {
            p.write(fd, 8192).unwrap();
        }
        p.close(fd).unwrap();
    };
    let (async_t, _) = run_nfs(Os::FreeBsd, Os::Linux, workload);
    let (sync_t, _) = run_nfs(Os::FreeBsd, Os::SunOs, workload);
    assert!(
        sync_t.as_millis() > async_t.as_millis() * 2.0,
        "sync server {:.1}ms should dwarf async server {:.1}ms",
        sync_t.as_millis(),
        async_t.as_millis()
    );
}

#[test]
fn linux_client_issues_eight_times_the_write_rpcs() {
    let workload = |p: &UProc| {
        let fd = p.creat("/w").unwrap();
        p.write(fd, 64 * 1024).unwrap();
        p.close(fd).unwrap();
    };
    let (_, freebsd_rpcs) = run_nfs(Os::FreeBsd, Os::Linux, workload);
    let (_, linux_rpcs) = run_nfs(Os::Linux, Os::Linux, workload);
    // 64 KB: FreeBSD needs 8 write RPCs, Linux 64; plus a handful of
    // lookups/creates for both.
    assert!(
        linux_rpcs > freebsd_rpcs + 40,
        "Linux {linux_rpcs} RPCs vs FreeBSD {freebsd_rpcs}"
    );
}

#[test]
fn linux_client_collapses_against_sunos_server() {
    // The Table 7 mechanism in miniature: write 256 KB through each
    // client against the sync SunOS server.
    let workload = |p: &UProc| {
        let fd = p.creat("/w").unwrap();
        p.write(fd, 256 * 1024).unwrap();
        p.close(fd).unwrap();
    };
    let (freebsd_t, _) = run_nfs(Os::FreeBsd, Os::SunOs, workload);
    let (linux_t, _) = run_nfs(Os::Linux, Os::SunOs, workload);
    assert!(
        linux_t.as_millis() > 3.0 * freebsd_t.as_millis(),
        "Linux {:.0}ms vs FreeBSD {:.0}ms against a sync server",
        linux_t.as_millis(),
        freebsd_t.as_millis()
    );
}

#[test]
fn client_data_cache_avoids_reread_rpcs() {
    let (_, rpcs) = run_nfs(Os::FreeBsd, Os::Linux, |p| {
        let fd = p.creat("/f").unwrap();
        p.write(fd, 32 * 1024).unwrap();
        p.close(fd).unwrap();
        // First read pulls the data; the second is served locally.
        for _ in 0..2 {
            let fd = p.open("/f", OpenFlags::rdonly()).unwrap();
            while p.read(fd, 8192).unwrap() > 0 {}
            p.close(fd).unwrap();
        }
    });
    // 4 writes + 4 reads + create + lookups; a second read pass would
    // have added 4 more READ RPCs.
    assert!(
        rpcs < 16,
        "expected the second pass cached, got {rpcs} RPCs"
    );
}

#[test]
fn attribute_cache_behaviour_differs_per_client() {
    let workload = |p: &UProc| {
        let fd = p.creat("/f").unwrap();
        p.close(fd).unwrap();
        for _ in 0..50 {
            p.stat("/f").unwrap();
        }
    };
    let (_, freebsd_rpcs) = run_nfs(Os::FreeBsd, Os::Linux, workload);
    let (_, linux_rpcs) = run_nfs(Os::Linux, Os::Linux, workload);
    assert!(
        linux_rpcs > freebsd_rpcs + 40,
        "Linux re-fetches attributes ({linux_rpcs} vs {freebsd_rpcs} RPCs)"
    );
}
