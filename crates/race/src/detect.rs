//! The happens-before checker.
//!
//! A TSan-style vector-clock detector specialised for the baton
//! engine's concurrency model. "Threads" here are *simulated tasks*
//! (engine `Tid`s, with task 0 standing in for the host thread), and
//! the happens-before relation contains only the edges the *program*
//! enforces — spawn, `SimMutex` release→acquire, wakeup delivery,
//! timer arm→fire, channel operations. A baton handoff is deliberately
//! **not** an edge: which task runs next is a scheduler choice, and
//! treating it as synchronization would totally order every access and
//! hide every race.
//!
//! Engine-internal shared structures (run queue, timer heap, trace
//! ring, wait queues, per-proc accounts) are accessed through
//! [`Detector::protected_access`], which brackets the access in an
//! acquire/release of a per-structure internal sync var — the model of
//! "this structure has a lock discipline". Code that touches the
//! structure *without* the bracket (a planted mutant, a future refactor
//! that forgets it) produces a genuine unordered pair and trips the
//! checker.
//!
//! The detector also records, per `(task, nth-slice-of-task)`, the
//! footprint of locations and sync vars touched — the independence
//! oracle the schedule explorer's sleep sets consume.

use std::collections::BTreeMap;

use crate::clock::VClock;

/// A synchronization variable: something tasks release into and
/// acquire from, carrying a vector clock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum SyncId {
    /// A `SimMutex`, keyed by its wait queue's raw id.
    Lock(u64),
    /// A `SimChannel`, keyed by its read queue's raw id. Every channel
    /// operation acquires then releases it, so all operations on one
    /// channel are totally ordered — the model of the host mutex that
    /// guards the channel's buffer.
    Channel(u64),
    /// A timer arming, keyed by the engine's timer sequence number:
    /// the armer releases at arm time, the wakee acquires at fire time.
    Timer(u64),
    /// An engine-internal structure's lock discipline (see
    /// [`Detector::protected_access`]).
    Internal(&'static str, u64),
    /// A test-defined sync var.
    Named(&'static str, u64),
}

/// A memory location the checker watches.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Loc {
    /// The run policy's queue of runnable tasks.
    RunQueue,
    /// The engine's timer heap.
    TimerHeap,
    /// The trace ring / counter plane.
    TraceRing,
    /// One engine wait queue, keyed by raw id.
    WaitQueue(u64),
    /// One task's CPU account, keyed by tid.
    ProcAccount(u32),
    /// A test- or scenario-defined location.
    Named(&'static str, u64),
}

impl Loc {
    /// The internal sync var guarding this location under the engine's
    /// by-design lock discipline.
    pub fn internal_sync(&self) -> SyncId {
        match *self {
            Loc::RunQueue => SyncId::Internal("run-queue", 0),
            Loc::TimerHeap => SyncId::Internal("timer-heap", 0),
            Loc::TraceRing => SyncId::Internal("trace-ring", 0),
            Loc::WaitQueue(q) => SyncId::Internal("wait-queue", q),
            Loc::ProcAccount(t) => SyncId::Internal("proc-account", t as u64),
            Loc::Named(name, k) => SyncId::Internal(name, k),
        }
    }
}

/// Read or write.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum AccessKind {
    /// The access only observes the location.
    Read,
    /// The access mutates the location.
    Write,
}

/// The stack-of-record for one access: enough to point a human at the
/// racing code without host backtraces (which would be
/// schedule-dependent noise).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessInfo {
    /// The accessing task (engine tid; 0 = host).
    pub task: u32,
    /// The pid shown in traces (differs from `task` for lite procs,
    /// which run inside their scheduler's engine slot).
    pub pid: u32,
    /// The engine dispatch count at the access.
    pub dispatch: u64,
    /// A static name for the code site.
    pub site: &'static str,
}

impl std::fmt::Display for AccessInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {} (pid {}) at dispatch {} in {}",
            self.task, self.pid, self.dispatch, self.site
        )
    }
}

/// An unordered access pair on one location.
#[derive(Clone, Debug)]
pub struct Race {
    /// The racing location.
    pub loc: Loc,
    /// The earlier-recorded access.
    pub first: AccessInfo,
    /// The access that completed the race.
    pub second: AccessInfo,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data race on {:?}: {} is unordered with {}",
            self.loc, self.first, self.second
        )
    }
}

/// The locations and sync vars one scheduling slice touched — the
/// explorer's independence oracle. Two slices are independent iff
/// their footprints share no sync var and no location that either
/// writes.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Footprint {
    /// `(location, wrote)` pairs; a location read and written collapses
    /// to `wrote = true`.
    pub locs: BTreeMap<Loc, bool>,
    /// Sync vars acquired, released, or edged through.
    pub syncs: std::collections::BTreeSet<SyncId>,
}

impl Footprint {
    /// Whether the two footprints conflict (shared sync var, or shared
    /// location with at least one write).
    pub fn conflicts(&self, other: &Footprint) -> bool {
        if self.syncs.intersection(&other.syncs).next().is_some() {
            return true;
        }
        self.locs.iter().any(|(loc, &wrote)| {
            other
                .locs
                .get(loc)
                .is_some_and(|&other_wrote| wrote || other_wrote)
        })
    }
}

/// Where a wakeup's happens-before edge originates.
#[derive(Clone, Copy, Debug)]
pub enum WakeSrc {
    /// A running task delivered the wakeup (`wakeup_one`/`all`, channel
    /// signals, doorbell rings).
    Task(u32),
    /// A timer fired: the edge comes from the arming release into
    /// [`SyncId::Timer`], not from whichever task happened to advance
    /// the clock past the deadline.
    Timer(u64),
}

#[derive(Clone, Default, Debug)]
struct LocState {
    /// Last write: `(task, its clock component at the write, info)`.
    write: Option<(u32, u64, AccessInfo)>,
    /// Last read per task since the last ordered write.
    reads: BTreeMap<u32, (u64, AccessInfo)>,
}

/// The happens-before detector. One per armed simulation; every call
/// happens under the engine's state lock, so the detector is plain
/// mutable state.
#[derive(Default, Debug)]
pub struct Detector {
    clocks: BTreeMap<u32, VClock>,
    syncs: BTreeMap<SyncId, VClock>,
    locs: BTreeMap<Loc, LocState>,
    /// Scheduling-slice counter per task (bumped by `slice_begin`).
    slice_of: BTreeMap<u32, u32>,
    /// Each task's current-slice footprint. Kept per *task* (not per
    /// `(task, slice)`) so the per-access lookup walks a map bounded by
    /// the proc count, not by the run's total dispatch count; finished
    /// slices are flushed to `done_footprints` at the next
    /// `slice_begin`.
    current_footprint: BTreeMap<u32, Footprint>,
    /// Footprints of finished slices, keyed `(task, slice)`.
    done_footprints: Vec<((u32, u32), Footprint)>,
    /// Races found so far (the engine panics on the first when armed,
    /// but tests can run in collect mode).
    races: Vec<Race>,
}

impl Detector {
    /// A fresh detector with the host task (0) registered.
    pub fn new() -> Detector {
        let mut d = Detector::default();
        d.clocks.entry(0).or_default().bump(0);
        d
    }

    fn clock_mut(&mut self, task: u32) -> &mut VClock {
        self.clocks.entry(task).or_default()
    }

    fn footprint_mut(&mut self, task: u32) -> &mut Footprint {
        self.current_footprint.entry(task).or_default()
    }

    /// Registers the spawn edge: everything `parent` did before the
    /// spawn happens-before everything `child` does.
    pub fn task_start(&mut self, child: u32, parent: u32) {
        let parent_clock = self.clock_mut(parent).clone();
        let c = self.clock_mut(child);
        c.join(&parent_clock);
        c.bump(child);
        self.clock_mut(parent).bump(parent);
    }

    /// Registers the join edge: everything `task` ever did
    /// happens-before whatever `into` does next (used when the host
    /// reaps the finished simulation).
    pub fn task_join(&mut self, task: u32, into: u32) {
        let done = self.clock_mut(task).clone();
        self.clock_mut(into).join(&done);
    }

    /// Marks the start of a new scheduling slice for `task` (the engine
    /// calls this at every dispatch of the task).
    pub fn slice_begin(&mut self, task: u32) {
        let slice = self.slice_of.entry(task).or_insert(0);
        if let Some(fp) = self.current_footprint.get_mut(&task) {
            if !(fp.locs.is_empty() && fp.syncs.is_empty()) {
                self.done_footprints
                    .push(((task, *slice), std::mem::take(fp)));
            }
        }
        *slice += 1;
    }

    /// Acquire edge: `task` has now seen everything released into
    /// `sync`.
    pub fn acquire(&mut self, task: u32, sync: SyncId) {
        self.footprint_mut(task).syncs.insert(sync);
        // Disjoint field borrows: `syncs` read, `clocks` written. No
        // snapshot needed — this runs on every protected access, so it
        // must not allocate.
        if let Some(sc) = self.syncs.get(&sync) {
            self.clocks.entry(task).or_default().join(sc);
        }
    }

    /// Release edge: `sync` now carries everything `task` has done.
    /// The sync var is joined *before* bumping the task's component so
    /// work done after the release stays unordered with the acquirer.
    pub fn release(&mut self, task: u32, sync: SyncId) {
        self.footprint_mut(task).syncs.insert(sync);
        let c = self.clocks.entry(task).or_default();
        self.syncs.entry(sync).or_default().join(c);
        c.bump(task);
    }

    /// Wakeup-delivery edge into a (blocked, hence clock-stable)
    /// `wakee`. From a task: direct edge. From a timer: acquire of the
    /// arming's [`SyncId::Timer`] clock on the wakee's behalf.
    pub fn wake_edge(&mut self, src: WakeSrc, wakee: u32) {
        match src {
            WakeSrc::Task(waker) => {
                if waker == wakee {
                    return;
                }
                let c = self.clock_mut(waker);
                let snapshot = c.clone();
                c.bump(waker);
                self.clock_mut(wakee).join(&snapshot);
            }
            WakeSrc::Timer(seq) => {
                self.footprint_mut(wakee).syncs.insert(SyncId::Timer(seq));
                if let Some(sc) = self.syncs.get(&SyncId::Timer(seq)) {
                    self.clocks.entry(wakee).or_default().join(sc);
                }
            }
        }
    }

    /// A raw access with no implied synchronization. Returns the race
    /// it completes, if any (also recorded internally).
    pub fn access(&mut self, loc: Loc, kind: AccessKind, info: AccessInfo) -> Option<Race> {
        let task = info.task;
        {
            let fp = self.footprint_mut(task);
            let wrote = fp.locs.entry(loc).or_insert(false);
            *wrote |= kind == AccessKind::Write;
        }
        // Disjoint field borrows (`clocks` then `locs`): the clock is
        // only read here, so no snapshot clone on the access fast path.
        let clock = &*self.clocks.entry(task).or_default();
        let state = self.locs.entry(loc).or_default();
        let mut race = None;
        if let Some((wt, wv, winfo)) = state.write {
            if wt != task && wv > clock.get(wt) {
                race = Some(Race {
                    loc,
                    first: winfo,
                    second: info,
                });
            }
        }
        if kind == AccessKind::Write && race.is_none() {
            for (&rt, &(rv, rinfo)) in &state.reads {
                if rt != task && rv > clock.get(rt) {
                    race = Some(Race {
                        loc,
                        first: rinfo,
                        second: info,
                    });
                    break;
                }
            }
        }
        match kind {
            AccessKind::Read => {
                state.reads.insert(task, (clock.get(task), info));
            }
            AccessKind::Write => {
                state.write = Some((task, clock.get(task), info));
                // Every prior read either raced (reported) or
                // happens-before this write; only the write epoch needs
                // to survive.
                state.reads.clear();
            }
        }
        if let Some(r) = race.clone() {
            self.races.push(r);
        }
        race
    }

    /// An access under the engine's by-design lock discipline: bracket
    /// it in an acquire/release of the location's internal sync var so
    /// disciplined accesses are always ordered. Returns the race only a
    /// mutant (or a refactor that forgot the discipline) can produce.
    pub fn protected_access(
        &mut self,
        loc: Loc,
        kind: AccessKind,
        info: AccessInfo,
    ) -> Option<Race> {
        let sync = loc.internal_sync();
        self.acquire(info.task, sync);
        let race = self.access(loc, kind, info);
        // Inlined release: the acquire above already joined the sync
        // var into the task's clock (and nothing else ran in between —
        // the detector is called under the engine's state lock), so the
        // task clock dominates and the release join collapses to a
        // copy. `clone_from` reuses the sync clock's buffer, keeping
        // this bracket allocation-free in steady state; the footprint
        // already carries `sync` from the acquire.
        let c = self.clocks.entry(info.task).or_default();
        self.syncs.entry(sync).or_default().clone_from(c);
        c.bump(info.task);
        race
    }

    /// All races recorded so far.
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// Drains the per-slice footprints gathered so far.
    pub fn take_footprints(&mut self) -> Vec<((u32, u32), Footprint)> {
        let mut out = std::mem::take(&mut self.done_footprints);
        for (task, fp) in std::mem::take(&mut self.current_footprint) {
            if !(fp.locs.is_empty() && fp.syncs.is_empty()) {
                let slice = self.slice_of.get(&task).copied().unwrap_or(0);
                out.push(((task, slice), fp));
            }
        }
        out.sort_by_key(|&(key, _)| key);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(task: u32, site: &'static str) -> AccessInfo {
        AccessInfo {
            task,
            pid: task,
            dispatch: 0,
            site,
        }
    }

    const LOC: Loc = Loc::Named("shared", 1);

    #[test]
    fn unsynchronized_write_write_races() {
        let mut d = Detector::new();
        d.task_start(1, 0);
        d.task_start(2, 0);
        assert!(d.access(LOC, AccessKind::Write, info(1, "a")).is_none());
        let race = d.access(LOC, AccessKind::Write, info(2, "b"));
        let race = race.expect("unordered writes race");
        assert_eq!(race.first.task, 1);
        assert_eq!(race.second.task, 2);
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn read_write_races_but_read_read_does_not() {
        let mut d = Detector::new();
        d.task_start(1, 0);
        d.task_start(2, 0);
        assert!(d.access(LOC, AccessKind::Read, info(1, "r1")).is_none());
        assert!(d.access(LOC, AccessKind::Read, info(2, "r2")).is_none());
        assert!(d.access(LOC, AccessKind::Write, info(2, "w")).is_some());
    }

    #[test]
    fn lock_discipline_orders_accesses() {
        let mut d = Detector::new();
        d.task_start(1, 0);
        d.task_start(2, 0);
        let m = SyncId::Lock(7);
        d.acquire(1, m);
        assert!(d.access(LOC, AccessKind::Write, info(1, "a")).is_none());
        d.release(1, m);
        d.acquire(2, m);
        assert!(
            d.access(LOC, AccessKind::Write, info(2, "b")).is_none(),
            "release->acquire orders the writes"
        );
        d.release(2, m);
    }

    #[test]
    fn spawn_edge_orders_parent_setup() {
        let mut d = Detector::new();
        assert!(d.access(LOC, AccessKind::Write, info(0, "setup")).is_none());
        d.task_start(1, 0);
        assert!(
            d.access(LOC, AccessKind::Write, info(1, "child")).is_none(),
            "spawn orders parent writes before the child"
        );
    }

    #[test]
    fn wake_edge_orders_waker_before_wakee() {
        let mut d = Detector::new();
        d.task_start(1, 0);
        d.task_start(2, 0);
        assert!(d.access(LOC, AccessKind::Write, info(1, "pre")).is_none());
        d.wake_edge(WakeSrc::Task(1), 2);
        assert!(d.access(LOC, AccessKind::Write, info(2, "post")).is_none());
    }

    #[test]
    fn timer_edge_comes_from_the_armer_not_the_clock_driver() {
        let mut d = Detector::new();
        d.task_start(1, 0);
        d.task_start(2, 0);
        d.task_start(3, 0);
        assert!(d.access(LOC, AccessKind::Write, info(1, "arm")).is_none());
        d.release(1, SyncId::Timer(9));
        // Task 3 drives the clock past the deadline; the edge must go
        // armer -> wakee, and no edge must involve task 3.
        d.wake_edge(WakeSrc::Timer(9), 2);
        assert!(d.access(LOC, AccessKind::Write, info(2, "fired")).is_none());
        assert!(
            d.access(LOC, AccessKind::Write, info(3, "driver")).is_some(),
            "the clock-driving task gained no order from the fire"
        );
    }

    #[test]
    fn protected_access_never_races_raw_access_does() {
        let mut d = Detector::new();
        d.task_start(1, 0);
        d.task_start(2, 0);
        let ring = Loc::TraceRing;
        assert!(d
            .protected_access(ring, AccessKind::Write, info(1, "charge"))
            .is_none());
        assert!(
            d.protected_access(ring, AccessKind::Write, info(2, "charge"))
                .is_none(),
            "disciplined accesses are ordered by the internal sync var"
        );
        // A mutant skips the discipline: the raw write is unordered
        // with task 2's disciplined write and races immediately.
        let race = d.access(ring, AccessKind::Write, info(1, "mutant"));
        let race = race.expect("raw write races the disciplined one");
        assert_eq!(race.first.site, "charge");
        assert_eq!(race.second.site, "mutant");
    }

    #[test]
    fn footprints_record_slices_and_conflicts() {
        let mut d = Detector::new();
        d.task_start(1, 0);
        d.task_start(2, 0);
        d.slice_begin(1);
        let _ = d.access(LOC, AccessKind::Write, info(1, "w"));
        d.slice_begin(2);
        let _ = d.access(LOC, AccessKind::Read, info(2, "r"));
        d.slice_begin(2);
        let _ = d.access(Loc::Named("other", 0), AccessKind::Read, info(2, "r2"));
        let fps: BTreeMap<_, _> = d.take_footprints().into_iter().collect();
        let a = &fps[&(1, 1)];
        let b = &fps[&(2, 1)];
        let c = &fps[&(2, 2)];
        assert!(a.conflicts(b), "write vs read of one loc conflicts");
        assert!(!b.conflicts(c), "disjoint reads do not conflict");
        assert!(!a.conflicts(c));
    }
}
