#![warn(missing_docs)]

//! Race detection and schedule exploration for the tnt engine.
//!
//! Two engines, one goal: turn "byte-identical on the seeds we tried"
//! into "output invariant under every legal schedule".
//!
//! * [`detect`] — a TSan-style vector-clock **happens-before checker**
//!   over the simulation's own synchronization edges (spawn, `SimMutex`
//!   release→acquire, wakeup delivery, timer arm→fire, channel
//!   operations). Baton handoffs are scheduler choices, not edges, so
//!   accesses ordered only by "who happened to run first" are reported
//!   as races.
//! * [`fn@explore`] — a loom-style **bounded schedule explorer** that
//!   replays a small scenario under every interleaving (with sleep-set
//!   pruning fed by the detector's footprints) and asserts the outcome
//!   never changes and no schedule deadlocks.
//!
//! The crate is dependency-free and knows nothing about `tnt-sim`; the
//! engine depends on it (behind the default-on `audit` feature) and
//! re-exports it as `tnt_sim::race`. See `DESIGN.md` §14.

pub mod clock;
pub mod detect;
pub mod explore;

pub use clock::VClock;
pub use detect::{AccessInfo, AccessKind, Detector, Footprint, Loc, Race, SyncId, WakeSrc};
pub use explore::{explore, Choice, ExploreReport, Outcome, RunResult};

use std::sync::atomic::{AtomicBool, Ordering};

/// Ambient arming flag, mirroring `tnt_fault::set_ambient`: the
/// `reproduce` binary sets it once (from `--audit`) before building any
/// simulation, and every `Sim::new` thereafter arms its happens-before
/// detector.
static AMBIENT: AtomicBool = AtomicBool::new(false);

/// Arms (or disarms) the ambient happens-before checker for every
/// simulation constructed after this call.
pub fn set_ambient(armed: bool) {
    AMBIENT.store(armed, Ordering::SeqCst);
}

/// Whether the ambient happens-before checker is armed.
pub fn ambient() -> bool {
    AMBIENT.load(Ordering::SeqCst)
}
