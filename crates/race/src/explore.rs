//! Bounded exhaustive schedule exploration with sleep-set pruning.
//!
//! The explorer drives a *replayable scenario*: a closure that runs one
//! complete simulation following a schedule script and reports what
//! happened. A script is a sequence of option indices; whenever the
//! engine's `ScriptedPolicy` faces more than one runnable task it
//! records a [`Choice`] (the sorted candidate tids and which index it
//! took) and consults the script, defaulting to index 0 past the end.
//!
//! Exploration is a depth-first walk of the prefix tree of scripts:
//! every node is one run (the prefix, then all-defaults), and the
//! node's children are the alternative options at the first choice
//! point beyond the prefix. The walk asserts that every complete
//! schedule yields the *same* [`Outcome`] and that none deadlocks.
//!
//! Pruning is Godefroid-style sleep sets: after fully exploring task
//! `a`'s subtree at a node, `a` goes to sleep for the sibling subtrees
//! and stays asleep below them until a *dependent* transition runs.
//! Dependence comes from the happens-before detector's per-slice
//! [`Footprint`]s: two slices are dependent iff their footprints
//! conflict (shared sync var, or shared location with a write). A
//! footprint the explorer has not seen — or has seen disagree across
//! runs — is treated as dependent, so unknown structure never prunes a
//! schedule (sound, merely slower).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::detect::Footprint;

/// One recorded scheduling decision: the runnable tasks (sorted tids)
/// and which index the script chose.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Choice {
    /// The runnable tasks at the decision, in ascending tid order.
    pub options: Vec<u32>,
    /// The index into `options` that ran.
    pub chosen: usize,
    /// Parallel to `options`: the 1-indexed scheduling-slice number the
    /// task's *next* dispatch would begin (its completed dispatch count
    /// plus one). This keys the footprint DB soundly even when tasks
    /// are also dispatched at singleton, unrecorded picks.
    pub slices: Vec<u32>,
}

/// What one complete schedule produced. Two schedules of a correct
/// scenario must produce *equal* outcomes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Outcome {
    /// Final simulated clock, in cycles.
    pub elapsed: u64,
    /// Per-proc CPU accounts, `(tid, cycles)` sorted by tid.
    pub cpu: Vec<(u32, u64)>,
    /// Scenario-curated counters (channel sums, core digests, trace
    /// counters) — named so a mismatch report reads well.
    pub payload: Vec<(String, u64)>,
    /// `Some` if the run deadlocked or panicked.
    pub error: Option<String>,
}

/// Everything one run reports back to the explorer.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The run's outcome.
    pub outcome: Outcome,
    /// Every choice point hit, in order (prefix included).
    pub choices: Vec<Choice>,
    /// Per `(task, slice)` footprints from the armed detector; empty
    /// disables pruning (everything is dependent).
    pub footprints: Vec<((u32, u32), Footprint)>,
}

/// The result of exploring one scenario.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Complete schedules whose outcomes were checked.
    pub schedules: usize,
    /// Subtrees skipped by sleep sets.
    pub pruned: usize,
    /// Total scenario runs (interior prefix-probe runs included).
    pub runs: usize,
    /// Distinct outcomes observed (correct scenarios: exactly 1).
    pub distinct_outcomes: usize,
    /// The canonical outcome (from the first schedule).
    pub outcome: Option<Outcome>,
    /// Human-readable failures: outcome divergence, deadlocks, or the
    /// run cap tripping.
    pub failures: Vec<String>,
}

impl ExploreReport {
    /// No divergence, no deadlock, not capped.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Explores every schedule of `run` (a replayable scenario), up to
/// `max_runs` scenario executions. `expected` pins the canonical
/// outcome (a clean build's), so a deterministic-but-wrong mutant that
/// produces the same wrong answer on every schedule still fails.
pub fn explore<F>(mut run: F, max_runs: usize, expected: Option<&Outcome>) -> ExploreReport
where
    F: FnMut(&[usize]) -> RunResult,
{
    let mut ctx = Ctx {
        report: ExploreReport {
            schedules: 0,
            pruned: 0,
            runs: 0,
            distinct_outcomes: 0,
            outcome: expected.cloned(),
            failures: Vec::new(),
            },
        expected_pinned: expected.is_some(),
        outcomes: Vec::new(),
        db: FootprintDb::default(),
        max_runs,
        capped: false,
    };
    if let Some(exp) = expected {
        ctx.outcomes.push(exp.clone());
        ctx.report.distinct_outcomes = 1;
    }
    dfs(&mut ctx, &mut run, Vec::new(), BTreeSet::new());
    if ctx.capped {
        ctx.report
            .failures
            .push(format!("run cap of {max_runs} hit before exhausting schedules"));
    }
    ctx.report
}

#[derive(Default)]
struct FootprintDb {
    /// `None` marks a footprint that disagreed across runs: always
    /// dependent.
    by_slice: BTreeMap<(u32, u32), Option<Footprint>>,
}

impl FootprintDb {
    fn merge(&mut self, fps: Vec<((u32, u32), Footprint)>) {
        for (key, fp) in fps {
            match self.by_slice.get(&key) {
                None => {
                    self.by_slice.insert(key, Some(fp));
                }
                Some(Some(existing)) if *existing == fp => {}
                Some(Some(_)) => {
                    self.by_slice.insert(key, None);
                }
                Some(None) => {}
            }
        }
    }

    /// Whether the next slices of two tasks are provably independent.
    /// Unknown or unstable footprints are dependent (no pruning).
    fn independent(&self, a: (u32, u32), b: (u32, u32)) -> bool {
        match (self.by_slice.get(&a), self.by_slice.get(&b)) {
            (Some(Some(fa)), Some(Some(fb))) => !fa.conflicts(fb),
            _ => false,
        }
    }
}

struct Ctx {
    report: ExploreReport,
    expected_pinned: bool,
    outcomes: Vec<Outcome>,
    db: FootprintDb,
    max_runs: usize,
    capped: bool,
}

impl Ctx {
    fn note_schedule(&mut self, outcome: &Outcome) {
        self.report.schedules += 1;
        if let Some(err) = &outcome.error {
            self.report
                .failures
                .push(format!("schedule {}: {}", self.report.schedules, err));
        }
        if self.report.outcome.is_none() {
            self.report.outcome = Some(outcome.clone());
        }
        if !self.outcomes.iter().any(|o| o == outcome) {
            self.outcomes.push(outcome.clone());
            self.report.distinct_outcomes = self.outcomes.len();
            let baseline = &self.outcomes[0];
            if self.outcomes.len() > 1 {
                self.report.failures.push(format!(
                    "schedule {} diverged{}: {}",
                    self.report.schedules,
                    if self.expected_pinned && self.outcomes.len() == 2 {
                        " from the pinned expected outcome"
                    } else {
                        ""
                    },
                    diff_outcomes(baseline, outcome)
                ));
            }
        }
    }
}

/// A terse, deterministic description of how two outcomes differ.
fn diff_outcomes(a: &Outcome, b: &Outcome) -> String {
    let mut parts = Vec::new();
    if a.elapsed != b.elapsed {
        parts.push(format!("elapsed {} vs {}", a.elapsed, b.elapsed));
    }
    if a.cpu != b.cpu {
        parts.push(format!("cpu {:?} vs {:?}", a.cpu, b.cpu));
    }
    if a.payload != b.payload {
        parts.push(format!("payload {:?} vs {:?}", a.payload, b.payload));
    }
    match (&a.error, &b.error) {
        (x, y) if x != y => parts.push(format!("error {x:?} vs {y:?}")),
        _ => {}
    }
    if parts.is_empty() {
        "outcomes compare unequal but render identically".to_string()
    } else {
        parts.join("; ")
    }
}

fn dfs<F>(ctx: &mut Ctx, run: &mut F, prefix: Vec<usize>, sleep: BTreeSet<u32>)
where
    F: FnMut(&[usize]) -> RunResult,
{
    if ctx.capped {
        return;
    }
    if ctx.report.runs >= ctx.max_runs {
        ctx.capped = true;
        return;
    }
    ctx.report.runs += 1;
    let res = run(&prefix);
    ctx.db.merge(res.footprints);
    let depth = prefix.len();
    if depth > res.choices.len() {
        // The scenario shrank under this prefix (a mutant changed the
        // choice structure); count the run as a schedule and stop.
        ctx.note_schedule(&res.outcome);
        return;
    }
    if depth == res.choices.len() {
        // No choice point beyond the prefix: this run IS the complete
        // schedule for this leaf.
        ctx.note_schedule(&res.outcome);
        return;
    }
    let node = res.choices[depth].clone();
    // A sleeping task has not run since the node recorded it, so its
    // next-slice index is whatever this node's options row says; a
    // slept task missing from the options was disabled by a dependent
    // transition and must not prune.
    let slice_of = |task: u32| -> Option<(u32, u32)> {
        node.options
            .iter()
            .position(|&t| t == task)
            .map(|i| (task, node.slices.get(i).copied().unwrap_or(0)))
    };
    let mut done: Vec<u32> = Vec::new();
    for (i, &tid) in node.options.iter().enumerate() {
        if sleep.contains(&tid) {
            ctx.report.pruned += 1;
            continue;
        }
        let tid_key = (tid, node.slices.get(i).copied().unwrap_or(0));
        let mut child_sleep = BTreeSet::new();
        for &slept in sleep.iter().chain(done.iter()) {
            if let Some(slept_key) = slice_of(slept) {
                if ctx.db.independent(slept_key, tid_key) {
                    child_sleep.insert(slept);
                }
            }
        }
        let mut child = prefix.clone();
        child.push(i);
        dfs(ctx, run, child, child_sleep);
        done.push(tid);
        if ctx.capped {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{Loc, SyncId};

    /// A toy scenario: `n` tasks each take one slice, every
    /// interleaving allowed, outcome independent of order. `deps`
    /// marks task pairs that conflict (sharing a written location).
    fn toy(n: u32, conflict_all: bool) -> impl FnMut(&[usize]) -> RunResult {
        move |script: &[usize]| {
            let mut remaining: Vec<u32> = (1..=n).collect();
            let mut choices = Vec::new();
            let mut order = Vec::new();
            let mut footprints = Vec::new();
            while !remaining.is_empty() {
                let chosen = if remaining.len() == 1 {
                    0
                } else {
                    let idx = choices.len();
                    let pick = script.get(idx).copied().unwrap_or(0).min(remaining.len() - 1);
                    choices.push(Choice {
                        options: remaining.clone(),
                        chosen: pick,
                        // Each toy task runs exactly one slice.
                        slices: vec![1; remaining.len()],
                    });
                    pick
                };
                let tid = remaining.remove(chosen);
                order.push(tid);
                let mut fp = Footprint::default();
                if conflict_all {
                    fp.locs.insert(Loc::Named("shared", 0), true);
                } else {
                    fp.locs.insert(Loc::Named("private", u64::from(tid)), true);
                    fp.syncs.insert(SyncId::Named("own", u64::from(tid)));
                }
                footprints.push(((tid, 1), fp));
            }
            RunResult {
                outcome: Outcome {
                    elapsed: 100,
                    cpu: (1..=n).map(|t| (t, 10)).collect(),
                    payload: vec![("order-len".to_string(), order.len() as u64)],
                    error: None,
                },
                choices,
                footprints,
            }
        }
    }

    #[test]
    fn exhaustive_enumeration_without_conflicts_prunes_to_linear() {
        // 3 fully independent tasks: sleep sets should collapse the 6
        // interleavings to far fewer complete schedules.
        let report = explore(toy(3, false), 1_000, None);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.distinct_outcomes, 1);
        assert!(report.pruned > 0, "independent tasks should prune");
        assert!(
            report.schedules < 6,
            "expected pruning below 3! = 6 schedules, got {}",
            report.schedules
        );
    }

    #[test]
    fn conflicting_tasks_enumerate_every_interleaving() {
        let report = explore(toy(3, true), 1_000, None);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(
            report.schedules, 6,
            "all-dependent tasks must enumerate 3! interleavings"
        );
        assert_eq!(report.pruned, 0);
        assert_eq!(report.distinct_outcomes, 1);
    }

    #[test]
    fn missing_footprints_disable_pruning() {
        let mut inner = toy(3, false);
        let report = explore(
            move |s: &[usize]| {
                let mut r = inner(s);
                r.footprints.clear();
                r
            },
            1_000,
            None,
        );
        assert!(report.passed());
        assert_eq!(report.schedules, 6, "no footprints, no pruning");
    }

    #[test]
    fn schedule_dependent_outcome_is_reported() {
        // Outcome leaks the order of the first pick.
        let mut inner = toy(2, true);
        let report = explore(
            move |s: &[usize]| {
                let mut r = inner(s);
                let first = s.first().copied().unwrap_or(0) as u64;
                r.outcome.payload.push(("first-pick".to_string(), first));
                r
            },
            1_000,
            None,
        );
        assert!(!report.passed());
        assert_eq!(report.distinct_outcomes, 2);
        assert!(report.failures[0].contains("diverged"), "{:?}", report.failures);
    }

    #[test]
    fn deadlock_outcomes_fail_the_report() {
        let mut inner = toy(2, true);
        let report = explore(
            move |s: &[usize]| {
                let mut r = inner(s);
                if s.first() == Some(&1) {
                    r.outcome.error = Some("deadlock: everyone blocked".to_string());
                }
                r
            },
            1_000,
            None,
        );
        assert!(!report.passed());
        assert!(
            report.failures.iter().any(|f| f.contains("deadlock")),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn pinned_expected_outcome_catches_consistent_mutants() {
        // Every schedule agrees with every other — but not with the
        // clean build's pinned outcome.
        let clean = explore(toy(2, true), 1_000, None);
        let mut expected = clean.outcome.clone().unwrap();
        let report = explore(toy(2, true), 1_000, Some(&expected));
        assert!(report.passed(), "same outcome passes against the pin");
        expected.elapsed += 1;
        let report = explore(toy(2, true), 1_000, Some(&expected));
        assert!(!report.passed(), "consistently-wrong outcome is caught");
        assert!(report.failures[0].contains("pinned expected outcome"));
    }

    #[test]
    fn run_cap_is_reported() {
        let report = explore(toy(4, true), 3, None);
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("run cap")));
    }

    #[test]
    fn pruned_and_unpruned_agree_on_outcomes() {
        // The safety net the docs promise: pruning changes the count,
        // never the verdict.
        let pruned = explore(toy(3, false), 1_000, None);
        let mut inner = toy(3, false);
        let unpruned = explore(
            move |s: &[usize]| {
                let mut r = inner(s);
                r.footprints.clear();
                r
            },
            1_000,
            None,
        );
        assert_eq!(pruned.passed(), unpruned.passed());
        assert_eq!(pruned.outcome, unpruned.outcome);
        assert!(pruned.schedules <= unpruned.schedules);
    }
}
