//! Vector clocks over dense task ids.
//!
//! A [`VClock`] maps task ids to logical timestamps. Task ids are the
//! engine's `Tid` values (with 0 reserved for the host thread), which
//! the engine hands out densely from zero — so the clock is a flat
//! `Vec<u64>` indexed by task id. A join or snapshot is then one pass
//! over a contiguous slice (a clone is a single allocation plus a
//! memcpy) instead of a node-per-task tree walk; at a few hundred
//! procs that difference is what keeps the armed detector inside the
//! ring benchmark's overhead gate.
//!
//! Representation invariant: the vector never ends in a zero (absent
//! trailing components *are* zero), so structurally equal clocks are
//! semantically equal and the derived `PartialEq` is exact.

/// A vector clock: per-task logical timestamps.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct VClock {
    ticks: Vec<u64>,
}

impl VClock {
    /// The zero clock.
    pub fn new() -> VClock {
        VClock::default()
    }

    /// The timestamp recorded for `task` (0 if never ticked).
    pub fn get(&self, task: u32) -> u64 {
        self.ticks.get(task as usize).copied().unwrap_or(0)
    }

    /// Advances `task`'s own component by one and returns the new value.
    pub fn bump(&mut self, task: u32) -> u64 {
        let i = task as usize;
        if self.ticks.len() <= i {
            self.ticks.resize(i + 1, 0);
        }
        self.ticks[i] += 1;
        self.ticks[i]
    }

    /// Componentwise maximum: after the join, `self` has seen
    /// everything `other` has seen.
    pub fn join(&mut self, other: &VClock) {
        if self.ticks.len() < other.ticks.len() {
            self.ticks.resize(other.ticks.len(), 0);
        }
        for (t, &tick) in self.ticks.iter_mut().zip(&other.ticks) {
            if *t < tick {
                *t = tick;
            }
        }
    }

    /// `true` iff every component of `self` is `<=` the matching
    /// component of `other` — i.e. `self` happens-before-or-equals
    /// `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.ticks
            .iter()
            .zip(other.ticks.iter().chain(std::iter::repeat(&0)))
            .all(|(&tick, &theirs)| tick <= theirs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(3), 0);
        assert_eq!(c.bump(3), 1);
        assert_eq!(c.bump(3), 2);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(4), 0);
    }

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VClock::new();
        a.bump(1);
        a.bump(1);
        let mut b = VClock::new();
        b.bump(1);
        b.bump(2);
        a.join(&b);
        assert_eq!(a.get(1), 2);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn le_orders_causally_related_clocks() {
        let mut a = VClock::new();
        a.bump(1);
        let mut b = a.clone();
        b.bump(2);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        // Concurrent clocks are unordered both ways.
        let mut c = VClock::new();
        c.bump(3);
        assert!(!b.le(&c) && !c.le(&b));
        // A clock is always <= itself.
        assert!(b.le(&b));
    }

    #[test]
    fn le_ignores_width_differences() {
        // A short clock against a longer one (and vice versa): absent
        // components are zero on both sides.
        let mut short = VClock::new();
        short.bump(0);
        let mut long = short.clone();
        long.bump(5);
        assert!(short.le(&long));
        assert!(!long.le(&short));
    }
}
