#![warn(missing_docs)]

//! Facade crate: re-exports the whole `tnt` reproduction.
//!
//! See `README.md` and `DESIGN.md` for the project overview; the
//! experiment entry points live in [`tnt_core`].

pub use tnt_core as core;
pub use tnt_cpu as cpu;
pub use tnt_fs as fs;
pub use tnt_harness as harness;
pub use tnt_net as net;
pub use tnt_nfs as nfs;
pub use tnt_os as os;
pub use tnt_sim as sim;
