//! Offline drop-in for the `parking_lot` API surface this workspace uses:
//! [`Mutex`], [`MutexGuard`], and [`Condvar`].
//!
//! The build environment has no registry access, so the workspace vendors
//! the handful of third-party APIs it consumes as thin local shims (see
//! `vendor/README.md`). This one is backed by `std::sync`; the semantic
//! differences from the real crate that matter here are papered over:
//!
//! * parking_lot has no lock poisoning — a poisoned `std` lock is
//!   transparently recovered with [`std::sync::PoisonError::into_inner`].
//! * `Condvar::wait` takes `&mut MutexGuard` rather than consuming the
//!   guard, so the guard wraps an `Option` of the inner `std` guard that
//!   `wait` temporarily takes.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{PoisonError, TryLockError};

/// A mutual exclusion primitive (shim over [`std::sync::Mutex`]).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex in an unlocked state.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking the current thread until it succeeds.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard { inner: Some(p.into_inner()) }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` is only ever `None` transiently
/// inside [`Condvar::wait`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable (shim over [`std::sync::Condvar`]).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Blocks the current thread until this condition variable is notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Wakes up one blocked thread. (The real crate reports whether a
    /// thread was woken; `std` cannot, so this always claims `false`.)
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }

    /// Wakes up all blocked threads. (Woken count is unavailable via
    /// `std`; always reports zero.)
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            drop(ready);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        h.join().unwrap();
        assert!(*ready);
    }
}
