//! Offline drop-in for the `rand` 0.8 API surface this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range` over
//! integer and float ranges.
//!
//! The build environment has no registry access, so the workspace vendors
//! the handful of third-party APIs it consumes as thin local shims (see
//! `vendor/README.md`). The generator here is xoshiro256** seeded via
//! SplitMix64 — NOT the upstream ChaCha12 `StdRng`, so the value streams
//! differ from real `rand`. That is acceptable for this repo: the
//! simulation only requires that a fixed seed give a fixed stream, and all
//! calibration tests were re-baselined against this generator.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching the subset of `rand::SeedableRng` used
/// here (`seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, matching the subset of `rand::Rng` used here
/// (`gen_range` only).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod distributions {
    //! Distribution plumbing: only uniform range sampling is provided.

    pub mod uniform {
        //! Uniform sampling over `Range` / `RangeInclusive`.

        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that knows how to sample itself. Implemented for the
        /// primitive integer and float `Range`/`RangeInclusive` types.
        pub trait SampleRange<T> {
            /// Draws one value from the range using `rng`.
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
        }

        macro_rules! int_ranges {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range in gen_range");
                        let span = (self.end as i128) - (self.start as i128);
                        let off = (rng.next_u64() as i128).rem_euclid(span);
                        ((self.start as i128) + off) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range in gen_range");
                        let span = (hi as i128) - (lo as i128) + 1;
                        let off = (rng.next_u64() as i128).rem_euclid(span);
                        ((lo as i128) + off) as $t
                    }
                }
            )*};
        }
        int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        /// 53 uniform mantissa bits mapped to `[0, 1)`.
        fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// 53 uniform mantissa bits mapped to `[0, 1]`.
        fn unit_f64_inclusive<R: RngCore>(rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        }

        macro_rules! float_ranges {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range in gen_range");
                        let u = unit_f64(rng) as $t;
                        self.start + u * (self.end - self.start)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range in gen_range");
                        let u = unit_f64_inclusive(rng) as $t;
                        lo + u * (hi - lo)
                    }
                }
            )*};
        }
        float_ranges!(f32, f64);
    }
}

pub mod rngs {
    //! Concrete generators: only [`StdRng`] is provided.

    use crate::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Statistically strong enough for simulation jitter and
    /// workload shuffling; not cryptographic.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let (mut n2, mut n3) = (s2 ^ s0, s3 ^ s1);
            let n1 = s1 ^ n2;
            let n0 = s0 ^ n3;
            n2 ^= t;
            n3 = n3.rotate_left(45);
            self.s = [n0, n1, n2, n3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo_seen = f64::INFINITY;
        let mut hi_seen = f64::NEG_INFINITY;
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            let w: f64 = rng.gen_range(0.99..=1.01);
            assert!((0.99..=1.01).contains(&w));
            lo_seen = lo_seen.min(v);
            hi_seen = hi_seen.max(v);
        }
        assert!(lo_seen < 0.2 && hi_seen > 0.8, "spread looks uniform-ish");
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let _: u8 = rng.gen_range(0u8..=u8::MAX);
            let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
        }
    }
}
