//! Offline drop-in for the `proptest` API surface this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors
//! the handful of third-party APIs it consumes as thin local shims (see
//! `vendor/README.md`). This shim keeps the property-test *surface* —
//! `proptest! {}`, `prop_assert*!`, `prop_oneof!`, `any::<T>()`, `Just`,
//! ranges, `prop::collection::{vec, btree_set}`, simple `"[a-z]{0,16}"`
//! string patterns, `.prop_map` — but drops the machinery that needs a
//! registry-sized dependency tree:
//!
//! * **No shrinking.** A failing case panics with the original input; the
//!   deterministic per-(test, case) seed makes it reproducible anyway.
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * **Deterministic by construction.** Case `i` of test `t` is seeded
//!   from FNV-1a(`module::t`) mixed with `i`, so every run explores the
//!   same inputs. There is no `PROPTEST_CASES`-style env override.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The per-case random source handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> TestRng {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a, used to derive a stable per-test seed from its path.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The error carried by a failing `prop_assert*!` — like real proptest,
/// the assertion macros *return* this rather than panicking, so they work
/// inside closures that thread `Result` (the test harness unwraps it at
/// the case boundary).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed-case error with the given reason.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Runtime configuration for a `proptest!` block. Only `cases` affects
/// behaviour; `max_shrink_iters` exists for source compatibility with
/// the real crate (this shim reports the original failing input instead
/// of shrinking), so callers can keep building it with struct-update
/// from `default()`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (helper for `prop_oneof!`, which needs a uniform
/// element type for its arm vector).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Strategy that always yields a clone of its payload.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `s.prop_map(f)` adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed arms (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds a choice over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// The `any::<T>()` strategy: the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite and symmetric about zero.
        rng.unit_f64() * 2e9 - 1e9
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((rng.below(0x7E - 0x20) + 0x20) as u32).unwrap()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((lo as i128) + off) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.unit_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// `&'static str` patterns are interpreted as a tiny regex subset:
/// one character class with ranges/literals followed by an optional
/// `{min,max}` or `{n}` repetition (e.g. `"[a-z]{0,16}"`, `"[a-z]{1,8}"`).
/// Anything that does not parse is produced verbatim as a literal.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_simple_pattern(self) {
            Some((alphabet, min, max)) => {
                let len = min + rng.below((max - min + 1) as u64) as usize;
                (0..len)
                    .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_simple_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((alphabet, min, max))
}

/// Sampled collection sizes (`0..20`, `1..=8`, or an exact count).
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` of values from `elem`, length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a sampled target size.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `BTreeSet` of values from `elem`. Best-effort: if the element
    /// domain is too small to reach the sampled size, a smaller (but
    /// at-least-`min`-when-possible) set is returned.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 20 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// `prop::` namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests. Supports the forms used in this repo:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u64..100, flag in any::<bool>()) { ... }
/// }
/// ```
///
/// Each function becomes a `#[test]` that replays `cases` deterministic
/// inputs (the `#[test]` attribute written in the block is passed through
/// as-is, matching real proptest usage).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0u32..__cfg.cases {
                let mut __rng = $crate::TestRng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest case {} of {} failed: {}",
                        __case, stringify!($name), e
                    );
                }
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
}

/// Like `assert!`, but *returns* `Err(TestCaseError)` from the enclosing
/// function on failure (matching real proptest's behaviour, which the
/// test files rely on for type inference inside `Result` closures).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!` for equality, with `Debug` output of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`: {}", __a, __b, format!($($fmt)+)
        );
    }};
}

/// `prop_assert!` for inequality, with `Debug` output of both sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?}` != `{:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?}` != `{:?}`: {}", __a, __b, format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn pattern_parser_handles_class_and_counts() {
        let mut rng = TestRng::new(1);
        for _ in 0..64 {
            let s = crate::Strategy::generate(&"[a-z]{0,16}", &mut rng);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let lit = crate::Strategy::generate(&"hello", &mut rng);
        assert_eq!(lit, "hello");
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![
            (0u64..10).prop_map(|x| x * 2),
            Just(1u64),
        ];
        let mut rng = TestRng::new(2);
        for _ in 0..64 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!(v == 1 || (v % 2 == 0 && v < 20));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::new(3);
        let vs = prop::collection::vec(0u8..=255, 1..50);
        for _ in 0..32 {
            let v = crate::Strategy::generate(&vs, &mut rng);
            assert!((1..50).contains(&v.len()));
        }
        let ss = prop::collection::btree_set("[a-z]{1,8}", 1..10);
        for _ in 0..32 {
            let s = crate::Strategy::generate(&ss, &mut rng);
            assert!(s.len() < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = |seed| {
            let mut rng = TestRng::new(seed);
            (0..8)
                .map(|_| crate::Strategy::generate(&(0u64..1_000_000), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(77), gen(77));
        assert_ne!(gen(77), gen(78));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
        #[test]
        fn macro_roundtrip(x in 1u64..100, flag in any::<bool>(), s in "[a-z]{0,4}") {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(flag, flag);
            prop_assert!(s.len() <= 4);
        }
    }
}
