//! The paper's Internet-server motivation: "context switch time ... is
//! increasingly important for Internet servers that must sometimes
//! service hundreds of simultaneous connections."
//!
//! This example builds the same toy server two ways on each OS:
//!
//! 1. **process-per-connection** — N workers, each blocked on its own
//!    pipe, so the scheduler cycles through many processes: the regime
//!    where Figure 1's scheduler differences decide throughput;
//! 2. **event-driven** — one process multiplexing every connection with
//!    `select(2)`, dodging most context switches.
//!
//! ```text
//! cargo run --release --example internet_server
//! ```

use tnt_os::{boot, Os};
use tnt_sim::Cycles;

/// Requests each client issues.
const REQUESTS: u64 = 50;

/// Simulated CPU per request in the worker (parse + respond).
const SERVICE_CY: u64 = 20_000; // 200 µs

fn serve(os: Os, nclients: usize) -> f64 {
    let (sim, kernel) = boot(os, 1);
    kernel.spawn_user("acceptor", move |p| {
        let mut children = Vec::new();
        // One worker pair of pipes per connection (request, reply).
        for i in 0..nclients {
            let (req_rd, req_wr) = p.pipe();
            let (rep_rd, rep_wr) = p.pipe();
            // The connection's worker.
            children.push(p.fork(format!("worker{i}"), move |w| {
                for _ in 0..REQUESTS {
                    if w.read(req_rd, 128).unwrap() == 0 {
                        break;
                    }
                    w.compute(Cycles(SERVICE_CY));
                    w.write(rep_wr, 256).unwrap();
                }
            }));
            // The client driving it.
            children.push(p.fork(format!("client{i}"), move |c| {
                for _ in 0..REQUESTS {
                    c.write(req_wr, 128).unwrap();
                    c.read(rep_rd, 256).unwrap();
                }
                c.close(req_wr).unwrap();
            }));
        }
        for child in children {
            p.waitpid(child);
        }
    });
    let elapsed = sim.run().unwrap().as_secs();
    (nclients as u64 * REQUESTS) as f64 / elapsed
}

/// The event-driven variant: one server process selects over every
/// connection's request pipe.
fn serve_select(os: Os, nclients: usize) -> f64 {
    let (sim, kernel) = boot(os, 1);
    kernel.spawn_user("acceptor", move |p| {
        let mut req_rds = Vec::new();
        let mut rep_wrs = Vec::new();
        let mut client_ends = Vec::new();
        let mut children = Vec::new();
        for i in 0..nclients {
            let (req_rd, req_wr) = p.pipe();
            let (rep_rd, rep_wr) = p.pipe();
            req_rds.push(req_rd);
            rep_wrs.push(rep_wr);
            client_ends.push((req_wr, rep_rd));
            children.push(p.fork(format!("client{i}"), move |c| {
                for _ in 0..REQUESTS {
                    c.write(req_wr, 128).unwrap();
                    c.read(rep_rd, 256).unwrap();
                }
                c.close(req_wr).unwrap();
            }));
        }
        // Drop the acceptor's copies of the client-side ends BEFORE
        // forking the server, or the server would inherit write ends and
        // never see EOF — the classic fd-leak server bug.
        for (req_wr, rep_rd) in client_ends {
            p.close(req_wr).unwrap();
            p.close(rep_rd).unwrap();
        }
        // The single event loop.
        children.push(p.fork("event-server", move |srv| {
            let mut open = req_rds.len();
            while open > 0 {
                let ready = srv.select_read(&req_rds, None).unwrap();
                for fd in ready {
                    let idx = req_rds.iter().position(|r| *r == fd).unwrap();
                    if srv.read(fd, 128).unwrap() == 0 {
                        open -= 1;
                        continue;
                    }
                    srv.compute(Cycles(SERVICE_CY));
                    srv.write(rep_wrs[idx], 256).unwrap();
                }
            }
        }));
        for child in children {
            p.waitpid(child);
        }
    });
    let elapsed = sim.run().unwrap().as_secs();
    (nclients as u64 * REQUESTS) as f64 / elapsed
}

fn main() {
    println!("== toy Internet server: requests/second vs concurrent connections ==\n");
    println!("process-per-connection:");
    println!(
        "  {:<12} {:>10} {:>10} {:>10}",
        "OS", "8 conns", "32 conns", "64 conns"
    );
    for os in Os::benchmarked() {
        let r8 = serve(os, 8);
        let r32 = serve(os, 32);
        let r64 = serve(os, 64);
        println!(
            "  {:<12} {:>9.0}/s {:>9.0}/s {:>9.0}/s",
            os.label(),
            r8,
            r32,
            r64
        );
    }
    println!("\nevent-driven (one process + select):");
    println!(
        "  {:<12} {:>10} {:>10} {:>10}",
        "OS", "8 conns", "32 conns", "64 conns"
    );
    for os in Os::benchmarked() {
        let r8 = serve_select(os, 8);
        let r32 = serve_select(os, 32);
        let r64 = serve_select(os, 64);
        println!(
            "  {:<12} {:>9.0}/s {:>9.0}/s {:>9.0}/s",
            os.label(),
            r8,
            r32,
            r64
        );
    }
    println!("\nwhat to look for (Figure 1's fingerprints):");
    println!("  - Linux process-per-connection decays as connections grow: its");
    println!("    scheduler rescans the whole task table on every switch;");
    println!("  - FreeBSD barely moves: constant-time run queues;");
    println!("  - Solaris pays its heavyweight dispatcher everywhere, and falls");
    println!("    further once >32 runnable threads thrash its table;");
    println!("  - the event-driven design softens all three curves by replacing");
    println!("    most context switches with one select(2) loop.");
}
