//! The paper's Internet-server motivation: "context switch time ... is
//! increasingly important for Internet servers that must sometimes
//! service hundreds of simultaneous connections."
//!
//! This example builds the same toy server two ways on each OS:
//!
//! 1. **process-per-connection** — N workers, each blocked on its own
//!    pipe, so the scheduler cycles through many processes: the regime
//!    where Figure 1's scheduler differences decide throughput;
//! 2. **event-driven** — one process multiplexing every connection with
//!    `select(2)`, dodging most context switches.
//!
//! ```text
//! cargo run --release --example internet_server
//! ```
//!
//! A third mode scales past anything one-thread-per-process can host:
//! `crowd [N]` runs N (default 10,000) clients as **lite processes** —
//! cooperative state machines multiplexed inside a single engine slot —
//! against a small pool of threaded workers, connected by a
//! `SimChannel`:
//!
//! ```text
//! cargo run --release --example internet_server -- crowd 10000
//! ```

use std::sync::Arc;

use tnt_farm::{run_farm, FarmConfig};
use tnt_os::{boot, Os};
use tnt_sim::proc::{block_on, LiteScheduler, ProcCtx, Step};
use tnt_sim::{Cycles, SimChannel, WaitId};

/// Requests each client issues.
const REQUESTS: u64 = 50;

/// Simulated CPU per request in the worker (parse + respond).
const SERVICE_CY: u64 = 20_000; // 200 µs

fn serve(os: Os, nclients: usize) -> f64 {
    let (sim, kernel) = boot(os, 1);
    kernel.spawn_user("acceptor", move |p| {
        let mut children = Vec::new();
        // One worker pair of pipes per connection (request, reply).
        for i in 0..nclients {
            let (req_rd, req_wr) = p.pipe();
            let (rep_rd, rep_wr) = p.pipe();
            // The connection's worker.
            children.push(p.fork(format!("worker{i}"), move |w| {
                for _ in 0..REQUESTS {
                    if w.read(req_rd, 128).unwrap() == 0 {
                        break;
                    }
                    w.compute(Cycles(SERVICE_CY));
                    w.write(rep_wr, 256).unwrap();
                }
            }));
            // The client driving it.
            children.push(p.fork(format!("client{i}"), move |c| {
                for _ in 0..REQUESTS {
                    c.write(req_wr, 128).unwrap();
                    c.read(rep_rd, 256).unwrap();
                }
                c.close(req_wr).unwrap();
            }));
        }
        for child in children {
            p.waitpid(child);
        }
    });
    let elapsed = sim.run().unwrap().as_secs();
    (nclients as u64 * REQUESTS) as f64 / elapsed
}

/// The event-driven variant: one server process selects over every
/// connection's request pipe.
fn serve_select(os: Os, nclients: usize) -> f64 {
    let (sim, kernel) = boot(os, 1);
    kernel.spawn_user("acceptor", move |p| {
        let mut req_rds = Vec::new();
        let mut rep_wrs = Vec::new();
        let mut client_ends = Vec::new();
        let mut children = Vec::new();
        for i in 0..nclients {
            let (req_rd, req_wr) = p.pipe();
            let (rep_rd, rep_wr) = p.pipe();
            req_rds.push(req_rd);
            rep_wrs.push(rep_wr);
            client_ends.push((req_wr, rep_rd));
            children.push(p.fork(format!("client{i}"), move |c| {
                for _ in 0..REQUESTS {
                    c.write(req_wr, 128).unwrap();
                    c.read(rep_rd, 256).unwrap();
                }
                c.close(req_wr).unwrap();
            }));
        }
        // Drop the acceptor's copies of the client-side ends BEFORE
        // forking the server, or the server would inherit write ends and
        // never see EOF — the classic fd-leak server bug.
        for (req_wr, rep_rd) in client_ends {
            p.close(req_wr).unwrap();
            p.close(rep_rd).unwrap();
        }
        // The single event loop.
        children.push(p.fork("event-server", move |srv| {
            let mut open = req_rds.len();
            while open > 0 {
                let ready = srv.select_read(&req_rds, None).unwrap();
                for fd in ready {
                    let idx = req_rds.iter().position(|r| *r == fd).unwrap();
                    if srv.read(fd, 128).unwrap() == 0 {
                        open -= 1;
                        continue;
                    }
                    srv.compute(Cycles(SERVICE_CY));
                    srv.write(rep_wrs[idx], 256).unwrap();
                }
            }
        }));
        for child in children {
            p.waitpid(child);
        }
    });
    let elapsed = sim.run().unwrap().as_secs();
    (nclients as u64 * REQUESTS) as f64 / elapsed
}

/// Requests each crowd client issues (smaller than [`REQUESTS`]: the
/// crowd is three orders of magnitude wider).
const CROWD_REQUESTS: u64 = 3;

/// Simulated client think time between requests.
const THINK_CY: u64 = 1_000;

/// Threaded worker processes serving the crowd.
const CROWD_WORKERS: usize = 8;

/// The crowd variant: `nclients` lite processes (one engine slot, no
/// host threads) drive requests through a bounded [`SimChannel`] into a
/// pool of threaded workers. Returns `(req/s, engine dispatches, lite
/// polls)` — the dispatch numbers are the point: tens of thousands of
/// clients cost the baton engine almost nothing.
fn serve_crowd(os: Os, nclients: usize) -> (f64, u64, u64) {
    let (sim, kernel) = boot(os, 1);
    let s = kernel.sim().clone();
    let requests = Arc::new(SimChannel::<u32>::new(&s, 256));
    // Per-client reply queue: the serving worker rings exactly the
    // client whose request it completed.
    let reply_qs: Arc<Vec<WaitId>> = Arc::new((0..nclients).map(|_| s.new_queue()).collect());

    let total = nclients as u64 * CROWD_REQUESTS;
    for w in 0..CROWD_WORKERS {
        // Split the fixed request volume across the pool.
        let quota = total / CROWD_WORKERS as u64
            + u64::from((w as u64) < total % CROWD_WORKERS as u64);
        let rx = requests.clone();
        let replies = reply_qs.clone();
        kernel.spawn_user(format!("worker{w}"), move |p| {
            for _ in 0..quota {
                let client = rx.recv(p.sim());
                p.compute(Cycles(SERVICE_CY));
                p.sim().wakeup_one(replies[client as usize]);
            }
        });
    }

    let mut sched = LiteScheduler::new(&s);
    for id in 0..nclients as u32 {
        let tx = requests.clone();
        let replies = reply_qs.clone();
        let mut left = CROWD_REQUESTS;
        let mut phase = 0u8;
        sched.spawn(
            &format!("client{id}"),
            Box::new(move |ctx: &mut ProcCtx| match phase {
                // Think, then try to get the request onto the wire.
                0 => {
                    phase = 1;
                    Step::Charge(THINK_CY)
                }
                1 => match tx.try_send(ctx.sim(), id) {
                    Ok(()) => {
                        phase = 2;
                        block_on(replies[id as usize], "await reply")
                    }
                    Err(_) => block_on(tx.write_queue(), "request channel full"),
                },
                // Woken: the reply queue is private, so the wakeup IS
                // the reply.
                _ => {
                    left -= 1;
                    if left == 0 {
                        Step::Done
                    } else {
                        phase = 1;
                        Step::Charge(THINK_CY)
                    }
                }
            }),
        );
    }
    let handle = sched.start("crowd");
    let elapsed = sim.run().unwrap().as_secs();
    (
        total as f64 / elapsed,
        sim.dispatch_count(),
        handle.stats().polls,
    )
}

fn crowd_main(nclients: usize) {
    println!("== {nclients} lite clients vs {CROWD_WORKERS} threaded workers ==\n");
    println!(
        "  {:<12} {:>12} {:>16} {:>12}",
        "OS", "req/s", "engine switches", "lite polls"
    );
    for os in Os::benchmarked() {
        let (rps, dispatches, polls) = serve_crowd(os, nclients);
        println!(
            "  {:<12} {:>11.0}/s {:>16} {:>12}",
            os.label(),
            rps,
            dispatches,
            polls
        );
    }
    println!();
    println!("every client is a cooperative state machine in ONE engine slot:");
    println!("  - {nclients} threaded clients would need ~{} MB of host stacks", nclients / 2);
    println!("    (512 KB each) and an engine dispatch per client block;");
    println!("  - the lite crowd shares a run queue, so the engine only switches");
    println!("    between the scheduler slot and the worker pool.");

    // The same crowd through the real rig: tnt-farm adds the switched
    // topology, open-loop arrivals and the latency histogram, so the
    // crowd's *tail* becomes visible, not just its throughput.
    let farm_crowd = nclients.min(5_000);
    println!("\n== the same crowd through tnt-farm (open-loop, 600 req/s offered) ==\n");
    println!(
        "  {:<12} {:>9} {:>9} {:>9} {:>9}",
        "OS", "ach rps", "p50 ms", "p99 ms", "p999 ms"
    );
    for os in Os::benchmarked() {
        let r = run_farm(&FarmConfig::tcp(os, 600.0, farm_crowd, 1996));
        println!(
            "  {:<12} {:>9.1} {:>9.2} {:>9.2} {:>9.2}",
            os.label(),
            r.achieved_rps,
            r.hist.p50() as f64 / 100_000.0,
            r.hist.p99() as f64 / 100_000.0,
            r.hist.p999() as f64 / 100_000.0,
        );
    }
    println!("\nthe measured version of this table is harness experiment x10");
    println!("(`reproduce x10`); the full per-OS rate sweep is `reproduce farm`.");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("crowd") {
        let n = args
            .get(1)
            .map(|raw| raw.parse().expect("crowd size must be a number"))
            .unwrap_or(10_000);
        crowd_main(n);
        return;
    }
    println!("== toy Internet server: requests/second vs concurrent connections ==\n");
    println!("process-per-connection:");
    println!(
        "  {:<12} {:>10} {:>10} {:>10}",
        "OS", "8 conns", "32 conns", "64 conns"
    );
    for os in Os::benchmarked() {
        let r8 = serve(os, 8);
        let r32 = serve(os, 32);
        let r64 = serve(os, 64);
        println!(
            "  {:<12} {:>9.0}/s {:>9.0}/s {:>9.0}/s",
            os.label(),
            r8,
            r32,
            r64
        );
    }
    println!("\nevent-driven (one process + select):");
    println!(
        "  {:<12} {:>10} {:>10} {:>10}",
        "OS", "8 conns", "32 conns", "64 conns"
    );
    for os in Os::benchmarked() {
        let r8 = serve_select(os, 8);
        let r32 = serve_select(os, 32);
        let r64 = serve_select(os, 64);
        println!(
            "  {:<12} {:>9.0}/s {:>9.0}/s {:>9.0}/s",
            os.label(),
            r8,
            r32,
            r64
        );
    }
    println!("\nwhat to look for (Figure 1's fingerprints):");
    println!("  - Linux process-per-connection decays as connections grow: its");
    println!("    scheduler rescans the whole task table on every switch;");
    println!("  - FreeBSD barely moves: constant-time run queues;");
    println!("  - Solaris pays its heavyweight dispatcher everywhere, and falls");
    println!("    further once >32 runnable threads thrash its table;");
    println!("  - the event-driven design softens all three curves by replacing");
    println!("    most context switches with one select(2) loop.");
}
