//! Section 6's headline: the Pentium has no write-allocate cache, so the
//! stock libc `memset`/`memcpy` never exceed ~50 MB/s — yet a one-load
//! software prefetch unlocks 300+ MB/s. This demo sweeps the routines on
//! the machine model and prints the side-by-side curves.
//!
//! ```text
//! cargo run --release --example prefetch_demo
//! ```

use tnt_core::mem_bandwidth;
use tnt_cpu::{LibcVariant, MemRoutine};

const TOTAL: u64 = 4 * 1024 * 1024;

fn main() {
    println!("== the write-allocate story (Figures 2-8) ==\n");
    let sizes: [u64; 6] = [1024, 4096, 8192, 65536, 262144, 1 << 21];
    println!(
        "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "routine", "1K", "4K", "8K", "64K", "256K", "2M"
    );
    let rows: [(&str, MemRoutine); 6] = [
        ("read", MemRoutine::CustomRead),
        ("memset", MemRoutine::LibcMemset(LibcVariant::Linux)),
        ("write+pf", MemRoutine::CustomWritePrefetch),
        ("memcpy", MemRoutine::LibcMemcpy(LibcVariant::Linux)),
        ("copy", MemRoutine::CustomCopyNaive),
        ("copy+pf", MemRoutine::CustomCopyPrefetch),
    ];
    for (label, routine) in rows {
        print!("  {label:<12}");
        for &buf in &sizes {
            print!(" {:>8.1}", mem_bandwidth(routine, buf, TOTAL, 0));
        }
        println!(" MB/s");
    }

    println!("\nobservations reproduced from the paper:");
    let read_l1 = mem_bandwidth(MemRoutine::CustomRead, 4096, TOTAL, 0);
    let memset = mem_bandwidth(MemRoutine::LibcMemset(LibcVariant::Linux), 4096, TOTAL, 0);
    let wpf = mem_bandwidth(MemRoutine::CustomWritePrefetch, 4096, TOTAL, 0);
    let copy = mem_bandwidth(MemRoutine::CustomCopyNaive, 4096, TOTAL, 0);
    let cpf = mem_bandwidth(MemRoutine::CustomCopyPrefetch, 4096, TOTAL, 0);
    println!("  - L1 reads reach {read_l1:.0} MB/s, but memset manages only {memset:.0} MB/s:");
    println!("    write misses do not allocate, so every store drains to DRAM;");
    println!("  - touching one word of each line first (software prefetch)");
    println!("    lifts writes to {wpf:.0} MB/s and copies from {copy:.0} to {cpf:.0} MB/s;");
    println!("  - none of the three systems' 1995 libcs did this.");

    // The Section 6.4 anomaly: ragged sizes dip.
    let aligned = mem_bandwidth(MemRoutine::CustomRead, 512, TOTAL, 0);
    let ragged = mem_bandwidth(MemRoutine::CustomRead, 527, TOTAL, 0);
    println!("\nthe Section 6.4 dip: a 512-byte buffer reads at {aligned:.0} MB/s,");
    println!("but 527 bytes (15 left to the byte loop) only {ragged:.0} MB/s.");
}
