//! The large-file workload of Section 7: "video playback and editing
//! and large databases ... need high raw bandwidth and fast seeking".
//!
//! A toy playback loop streams a large media file at a fixed frame rate
//! on each system and reports dropped frames; a toy database mixes
//! random reads and writes. Both are thin wrappers over the same syscall
//! interface the paper's benchmarks use.
//!
//! ```text
//! cargo run --release --example video_playback
//! ```

use tnt_core::{run_with_fs, timed};
use tnt_os::{OpenFlags, Os};
use tnt_sim::Cycles;

/// 30 fps of ~64 KB frames = ~1.9 MB/s, a generous mid-90s video.
const FRAME_BYTES: u64 = 64 * 1024;
const FRAME_BUDGET_US: f64 = 1_000_000.0 / 30.0;
const FRAMES: u64 = 600; // ~37 MB, beyond the 20 MB cache
const DB_OPS: u32 = 150;

fn playback(os: Os) -> (u64, f64) {
    run_with_fs(os, 1, move |p| {
        let fd = p.creat("/movie.raw").unwrap();
        for _ in 0..FRAMES {
            p.write(fd, FRAME_BYTES).unwrap();
        }
        p.close(fd).unwrap();
        // Play it back: each frame must arrive within its budget.
        let fd = p.open("/movie.raw", OpenFlags::rdonly()).unwrap();
        let mut dropped = 0;
        let t0 = p.sim().now();
        for _ in 0..FRAMES {
            let (_, took) = timed(p, || {
                let mut left = FRAME_BYTES;
                while left > 0 {
                    let n = p.read(fd, left.min(8192)).unwrap();
                    assert!(n > 0, "file ends early");
                    left -= n;
                }
                p.compute(Cycles::from_micros(500.0)); // decode
            });
            if took.as_micros() > FRAME_BUDGET_US {
                dropped += 1;
            }
        }
        let elapsed = (p.sim().now() - t0).as_secs();
        p.close(fd).unwrap();
        let mb_s = (FRAMES * FRAME_BYTES) as f64 / (1024.0 * 1024.0) / elapsed;
        (dropped, mb_s)
    })
}

fn database(os: Os) -> f64 {
    run_with_fs(os, 1, move |p| {
        let fd = p.creat("/table.db").unwrap();
        let pages = 3_000u64; // 24 MB of 8 KB pages
        for _ in 0..pages {
            p.write(fd, 8192).unwrap();
        }
        p.close(fd).unwrap();
        let fd = p.open("/table.db", OpenFlags::rdwr()).unwrap();
        // Random page read-modify-write, the bonnie seek pattern.
        let offsets: Vec<u64> = (0..DB_OPS)
            .map(|_| p.sim().with_rng(|r| rand_page(r, pages)) * 8192)
            .collect();
        let (_, d) = timed(p, || {
            for off in offsets {
                p.lseek(fd, off).unwrap();
                p.read(fd, 8192).unwrap();
                p.lseek(fd, off).unwrap();
                p.write(fd, 8192).unwrap();
            }
        });
        p.close(fd).unwrap();
        DB_OPS as f64 / d.as_secs()
    })
}

fn rand_page(rng: &mut rand::rngs::StdRng, pages: u64) -> u64 {
    rand::Rng::gen_range(rng, 0..pages)
}

fn main() {
    println!("== large-file workloads: video playback and a toy database ==\n");
    println!(
        "  {:<12} {:>14} {:>12} {:>14}",
        "OS", "frames dropped", "stream MB/s", "db txn/s"
    );
    for os in Os::benchmarked() {
        let (dropped, mb_s) = playback(os);
        let txn = database(os);
        println!(
            "  {:<12} {:>8}/{:<5} {:>12.2} {:>14.0}",
            os.label(),
            dropped,
            FRAMES,
            mb_s,
            txn
        );
    }
    println!("\nthe Figure 9/11 story: Solaris's aggressive read-ahead streams");
    println!("large files best, while Linux's 1 KB blocks and fragmented");
    println!("allocator drop frames; random page updates converge towards the");
    println!("disk's ~14 ms once the working set escapes the buffer cache.");

    record_and_replay();
}

/// The replay plane (DESIGN.md §15): capture a short playback's disk
/// activity as a `.tntrace` stream, then drive it back through a fresh
/// disk model. The as-fast-as-possible replay must reproduce the
/// recorded disk busy time exactly — same fresh disk, same command
/// sequence, same service times.
fn record_and_replay() {
    use tnt_harness::{replay_trace, ReplayOptions};

    println!("\n== record & replay: the same workload as a .tntrace ==\n");
    println!(
        "  {:<12} {:>7} {:>14} {:>14} {:>6}",
        "OS", "events", "recorded busy", "replay busy", "match"
    );
    let frames = 400u64; // ~26 MB: past the buffer cache, so the disk works
    for os in Os::benchmarked() {
        let (sim, kernel) = tnt_os::boot(os, 1);
        let fs = tnt_fs::SimFs::fresh_for_os(os);
        kernel.mount(fs.clone());
        sim.recorder().enable();
        kernel.spawn_user("playback", move |p| {
            let fd = p.creat("/movie.raw").unwrap();
            for _ in 0..frames {
                p.write(fd, FRAME_BYTES).unwrap();
            }
            p.close(fd).unwrap();
            let fd = p.open("/movie.raw", OpenFlags::rdonly()).unwrap();
            for _ in 0..frames {
                let mut left = FRAME_BYTES;
                while left > 0 {
                    left -= p.read(fd, left.min(8192)).unwrap();
                }
            }
            p.close(fd).unwrap();
        });
        sim.run().unwrap();
        let recorded = fs.cache().disk().busy_cycles();
        let trace = sim.recorder().take();
        let replay = replay_trace(&trace, os, 1, ReplayOptions::asap());
        let ms = |cy: u64| cy as f64 / 100_000.0;
        println!(
            "  {:<12} {:>7} {:>11.2} ms {:>11.2} ms {:>6}",
            os.label(),
            trace.len(),
            ms(recorded.0),
            ms(replay.busy_cy),
            if replay.busy_cy == recorded.0 { "yes" } else { "NO" },
        );
    }
    println!("\nsave a capture with `reproduce replay --record <id>`, inspect it");
    println!("with docs/TRACE_FORMAT.md, and replay it on any OS model with");
    println!("`reproduce replay <trace>` — including under `--faults lossy`.");
}
