//! The software-engineering workload the paper's group actually cared
//! about: which free UNIX should a research lab compile on?
//!
//! Runs the Modified Andrew Benchmark locally on each system and over
//! NFS against both server types, then prints a recommendation table —
//! the Section 12 conclusion, regenerated.
//!
//! ```text
//! cargo run --release --example compile_farm
//! ```

use tnt_core::{mab_local, mab_over_nfs};
use tnt_os::Os;

fn main() {
    println!("== compile farm: the Modified Andrew Benchmark everywhere ==\n");

    println!("local disk (Table 3):");
    println!(
        "  {:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "OS", "mkdir", "copy", "stat", "read", "compile", "TOTAL"
    );
    for os in Os::benchmarked() {
        let r = mab_local(os, 1);
        println!(
            "  {:<12} {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s",
            os.label(),
            r.phase_s[0],
            r.phase_s[1],
            r.phase_s[2],
            r.phase_s[3],
            r.phase_s[4],
            r.total_s
        );
    }

    for (server, label) in [
        (Os::Linux, "Linux 1.2.8 (async writes)"),
        (Os::SunOs, "SunOS 4.1.4 (sync writes)"),
    ] {
        println!("\nover NFS, server = {label}:");
        for client in Os::benchmarked() {
            let r = mab_over_nfs(client, server, 1);
            println!("  {:<12} client: {:>7.2}s total", client.label(), r.total_s);
        }
    }

    println!("\nconclusions (as in Section 12):");
    println!("  - Linux wins locally: async metadata absorbs the compiler's churn;");
    println!("  - FreeBSD wins remotely: its network stack carries NFS best;");
    println!("  - the Linux client collapses against a spec-compliant (sync) NFS");
    println!("    server: its 1 KB write RPCs each pay a disk commit.");
}
