//! The software-engineering workload the paper's group actually cared
//! about: which free UNIX should a research lab compile on?
//!
//! Runs the Modified Andrew Benchmark locally on each system and over
//! NFS against both server types, then prints a recommendation table —
//! the Section 12 conclusion, regenerated.
//!
//! ```text
//! cargo run --release --example compile_farm
//! ```

use tnt_core::{mab_local, mab_over_nfs};
use tnt_harness::{capture_experiment, replay_trace, ReplayOptions, Scale};
use tnt_os::Os;
use tnt_sim::fault::FaultProfile;

fn main() {
    println!("== compile farm: the Modified Andrew Benchmark everywhere ==\n");

    println!("local disk (Table 3):");
    println!(
        "  {:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "OS", "mkdir", "copy", "stat", "read", "compile", "TOTAL"
    );
    for os in Os::benchmarked() {
        let r = mab_local(os, 1);
        println!(
            "  {:<12} {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s",
            os.label(),
            r.phase_s[0],
            r.phase_s[1],
            r.phase_s[2],
            r.phase_s[3],
            r.phase_s[4],
            r.total_s
        );
    }

    for (server, label) in [
        (Os::Linux, "Linux 1.2.8 (async writes)"),
        (Os::SunOs, "SunOS 4.1.4 (sync writes)"),
    ] {
        println!("\nover NFS, server = {label}:");
        for client in Os::benchmarked() {
            let r = mab_over_nfs(client, server, 1);
            println!("  {:<12} client: {:>7.2}s total", client.label(), r.total_s);
        }
    }

    println!("\nconclusions (as in Section 12):");
    println!("  - Linux wins locally: async metadata absorbs the compiler's churn;");
    println!("  - FreeBSD wins remotely: its network stack carries NFS best;");
    println!("  - the Linux client collapses against a spec-compliant (sync) NFS");
    println!("    server: its 1 KB write RPCs each pay a disk commit.");

    replay_the_compile();
}

/// The README's record → replay → replay-under-faults story, end to
/// end: capture the bonnie streams of experiment f9 as `.tntrace`
/// streams, replay the busiest one as fast as possible (a clean run
/// reproduces the recorded disk schedule), then replay the same trace
/// on the `lossy` fault profile and watch retries stretch the disk.
fn replay_the_compile() {
    println!("\n== record & replay the bonnie stream (f9, smoke) ==\n");
    let traces = capture_experiment("f9", &Scale::smoke());
    let trace = traces
        .iter()
        .max_by_key(|t| t.len())
        .expect("f12 boots at least one machine");
    println!(
        "  captured {} machine trace(s); replaying the busiest ({} events)",
        traces.len(),
        trace.len()
    );

    let clean = replay_trace(trace, Os::FreeBsd, 1, ReplayOptions::asap());
    tnt_sim::fault::set_ambient(FaultProfile::lossy());
    let lossy = replay_trace(trace, Os::FreeBsd, 1, ReplayOptions::asap());
    tnt_sim::fault::set_ambient(FaultProfile::off());

    let ms = |cy: u64| cy as f64 / 100_000.0;
    println!(
        "  {:<8} {:>9} {:>8} {:>6} {:>12}",
        "faults", "commands", "retries", "EIO", "disk busy"
    );
    for (label, r) in [("off", &clean), ("lossy", &lossy)] {
        println!(
            "  {:<8} {:>9} {:>8} {:>6} {:>9.2} ms",
            label, r.commands, r.faults, r.eio, ms(r.busy_cy)
        );
    }
    println!("\nthe trace is the workload: the same recorded schedule, re-run");
    println!("against a flaky disk, without touching the original benchmark.");
}
