//! Quickstart: boot the three 1995 kernels and measure a few basics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This touches every layer of the reproduction: the deterministic
//! simulation engine, the per-OS kernel models, pipes, and a mounted
//! filesystem personality.

use tnt_core::{crtdel_ms, syscall_us};
use tnt_os::{boot, Os};
use tnt_sim::Cycles;

fn main() {
    println!("== tnt quickstart: three kernels on one simulated Pentium ==\n");

    // 1. Raw system-call latency (the paper's Table 2).
    println!("getpid() latency (Table 2):");
    for os in Os::benchmarked() {
        let us = syscall_us(os, 10_000, 1);
        println!("  {:<12} {us:.2} µs", os.label());
    }

    // 2. A tiny custom program: fork a child and talk over a pipe.
    println!("\na pipe conversation on Linux:");
    let (sim, kernel) = boot(Os::Linux, 1);
    kernel.spawn_user("parent", |p| {
        let (rd, wr) = p.pipe();
        let child = p.fork("child", move |c| {
            c.write_bytes(wr, b"hello from the child").unwrap();
            c.close(wr).unwrap();
        });
        p.close(wr).unwrap();
        let msg = p.read_bytes(rd, 64).unwrap();
        println!(
            "  parent read {:?} at t={}",
            String::from_utf8_lossy(&msg),
            p.sim().now()
        );
        p.compute(Cycles::from_micros(10.0));
        p.waitpid(child);
    });
    let elapsed = sim.run().unwrap();
    println!("  simulated time: {elapsed}");

    // 3. The famous metadata result (Figure 12): temporary-file churn.
    println!("\ncreate/write/read/delete a 1 KB temp file (Figure 12):");
    for os in Os::benchmarked() {
        let ms = crtdel_ms(os, 1024, 5, 1);
        println!("  {:<12} {ms:.2} ms per iteration", os.label());
    }
    println!("\nLinux is an order of magnitude faster because ext2 updates");
    println!("metadata asynchronously; the FFS family seeks to the inode and");
    println!("cylinder-group blocks synchronously on every create and delete.");
}
