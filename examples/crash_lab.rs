//! The Section 7.2 trade-off, hands on: what a power failure costs each
//! filesystem, and what `sync` buys you.
//!
//! The paper observes that ext2's asynchronous metadata "could result in
//! losing more data after a system crash", while FFS's synchronous
//! updates "help preserve file system consistency". The simulator lets
//! us actually pull the plug: write a batch of files, crash at a chosen
//! moment, and count survivors.
//!
//! ```text
//! cargo run --release --example crash_lab
//! ```

use std::sync::Arc;

use tnt_fs::{CrashReport, Disk, DiskParams, FsParams, SimFs};
use tnt_os::{boot, boot_with, future, Filesystem, Os};

const FILES: u64 = 40;
const FILE_BYTES: u64 = 6 * 1024;

/// Creates `FILES` files, optionally syncing, then "crashes".
fn experiment(os: Os, sync_before_crash: bool) -> (CrashReport, f64) {
    let (sim, kernel) = boot(os, 1);
    let fs = SimFs::fresh_for_os(os);
    kernel.mount(fs.clone());
    let fs2 = fs.clone();
    kernel.spawn_user("writer", move |p| {
        for i in 0..FILES {
            let fd = p.creat(&format!("/mail{i}")).unwrap();
            p.write(fd, FILE_BYTES).unwrap();
            p.close(fd).unwrap();
        }
        if sync_before_crash {
            fs2.sync(p.kernel().env());
        }
    });
    let elapsed = sim.run().unwrap().as_secs();
    (fs.crash_report(), elapsed)
}

/// The FreeBSD 2.1 preview: ordered asynchronous metadata.
fn experiment_freebsd_21() -> (CrashReport, f64) {
    let (sim, kernel) = boot_with(future::freebsd_2_1(), 1);
    let disk = Arc::new(Disk::new(DiskParams::hp3725()));
    let fs = SimFs::new(disk, FsParams::ffs_freebsd_21());
    kernel.mount(fs.clone());
    kernel.spawn_user("writer", move |p| {
        for i in 0..FILES {
            let fd = p.creat(&format!("/mail{i}")).unwrap();
            p.write(fd, FILE_BYTES).unwrap();
            p.close(fd).unwrap();
        }
    });
    let elapsed = sim.run().unwrap().as_secs();
    (fs.crash_report(), elapsed)
}

fn row(label: &str, r: CrashReport, secs: f64) {
    println!(
        "  {label:<34} {:>4.1} ms/file   {:>3}/{:<3} files   {:>4}/{:<4} data blocks",
        secs * 1000.0 / FILES as f64,
        r.durable_entries,
        r.entries,
        r.durable_data_blocks,
        r.data_blocks
    );
}

fn main() {
    println!("== crash lab: pull the plug after writing {FILES} small files ==\n");
    println!(
        "  {:<34} {:>12} {:>14} {:>16}",
        "configuration", "write cost", "meta durable", "data durable"
    );
    for os in Os::benchmarked() {
        let (r, secs) = experiment(os, false);
        row(os.label(), r, secs);
    }
    println!();
    let (r, secs) = experiment(Os::Linux, true);
    row("Linux + sync(2) before crash", r, secs);
    let (r, secs) = experiment_freebsd_21();
    row("FreeBSD 2.1 (ordered async)", r, secs);

    // What does FFS durability actually cost? Work it out per file.
    let sync_cost = {
        let fast = experiment(Os::Linux, false).1;
        let safe = experiment(Os::FreeBsd, false).1;
        (safe - fast) * 1000.0 / FILES as f64
    };
    println!("\nreading the table:");
    println!("  - ext2 loses every file not yet flushed: speed borrowed from durability;");
    println!("  - FFS pays ~{sync_cost:.0} ms of synchronous seeks per file to make");
    println!("    each create durable before creat(2) returns;");
    println!("  - an explicit sync(2) buys ext2 durability at one batched flush;");
    println!("  - FreeBSD 2.1's ordered async metadata (Section 13) is the");
    println!("    eventual resolution: ext2-class speed, ordered on-disk state.");
}
